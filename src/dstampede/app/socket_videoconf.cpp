#include "dstampede/app/socket_videoconf.hpp"

#include <algorithm>
#include <atomic>

#include "dstampede/app/image.hpp"
#include "dstampede/common/stats.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"
#include "dstampede/transport/tcp.hpp"

namespace dstampede::app {
namespace {

constexpr std::uint8_t kRoleProducer = 1;
constexpr std::uint8_t kRoleDisplay = 2;

struct Registration {
  std::uint8_t role = 0;
  std::uint32_t index = 0;
};

// The hand-rolled session setup the paper's socket version needed:
// every connection announces its role and participant index so the
// mixer can wire its own plumbing.
Status SendRegistration(transport::TcpConnection& conn, std::uint8_t role,
                        std::uint32_t index) {
  Buffer reg;
  ByteWriter writer(reg);
  writer.U8(role);
  writer.U32(index);
  return conn.SendFrame(reg);
}

Result<Registration> RecvRegistration(transport::TcpConnection& conn) {
  Buffer reg;
  DS_RETURN_IF_ERROR(conn.RecvFrame(reg, Deadline::AfterMillis(10000)));
  ByteReader reader(reg);
  Registration out;
  DS_ASSIGN_OR_RETURN(out.role, reader.U8());
  DS_ASSIGN_OR_RETURN(out.index, reader.U32());
  return out;
}

class FailBox {
 public:
  void Set(const Status& status) {
    if (status.ok()) return;
    ds::MutexLock lock(mu_);
    if (first_.ok()) first_ = status;
    failed_.store(true);
  }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  Status first() const {
    ds::MutexLock lock(mu_);
    return first_;
  }

 private:
  mutable ds::Mutex mu_{"app.failbox.mu"};
  Status first_ DS_GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

}  // namespace

Result<SocketVideoConfReport> SocketVideoConfApp::Run(
    const SocketVideoConfConfig& config) {
  if (config.num_clients == 0 || config.num_frames <= config.warmup_frames) {
    return InvalidArgumentError("bad socket videoconf config");
  }
  const std::size_t k = config.num_clients;
  DS_ASSIGN_OR_RETURN(auto listener, transport::TcpListener::Bind(0));
  const transport::SockAddr server_addr = listener.bound_addr();

  FailBox fail;
  SocketVideoConfReport report;
  report.display_fps.assign(k, 0.0);
  std::vector<Thread> threads;

  // --- the single-threaded socket mixer -----------------------------------
  threads.emplace_back([&] {
    std::vector<transport::TcpConnection> producers(k);
    std::vector<transport::TcpConnection> displays(k);
    std::size_t registered = 0;
    while (registered < 2 * k) {
      auto conn = listener.Accept(Deadline::AfterMillis(10000));
      if (!conn.ok()) return fail.Set(conn.status());
      auto reg = RecvRegistration(*conn);
      if (!reg.ok()) return fail.Set(reg.status());
      if (reg->index >= k) return fail.Set(InternalError("bad index"));
      if (reg->role == kRoleProducer) {
        producers[reg->index] = std::move(conn).value();
      } else if (reg->role == kRoleDisplay) {
        displays[reg->index] = std::move(conn).value();
      } else {
        return fail.Set(InternalError("bad role"));
      }
      ++registered;
    }

    Compositor comp(k, config.image_bytes);
    Buffer frame;
    for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
      Buffer composite = comp.MakeComposite();
      // Obtain images from each client one after the other (§5.2).
      for (std::size_t j = 0; j < k; ++j) {
        Status s = producers[j].RecvFrame(frame, Deadline::AfterMillis(60000));
        if (!s.ok()) return fail.Set(s);
        Status b = comp.Blend(composite, j, frame);
        if (!b.ok()) return fail.Set(b);
      }
      // Send the composite to each client one after the other.
      for (std::size_t j = 0; j < k; ++j) {
        Status s = displays[j].SendFrame(composite);
        if (!s.ok()) return fail.Set(s);
      }
    }
  });

  // --- producers -------------------------------------------------------------
  for (std::size_t j = 0; j < k; ++j) {
    threads.emplace_back([&, j] {
      auto conn = transport::TcpConnection::Connect(server_addr);
      if (!conn.ok()) return fail.Set(conn.status());
      Status r = SendRegistration(*conn, kRoleProducer,
                                  static_cast<std::uint32_t>(j));
      if (!r.ok()) return fail.Set(r);
      VirtualCamera camera(static_cast<std::uint32_t>(j), config.image_bytes);
      for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
        Status s = conn->SendFrame(camera.Grab(ts));
        if (!s.ok()) return fail.Set(s);
      }
    });
  }

  // --- displays ----------------------------------------------------------------
  for (std::size_t j = 0; j < k; ++j) {
    threads.emplace_back([&, j] {
      auto conn = transport::TcpConnection::Connect(server_addr);
      if (!conn.ok()) return fail.Set(conn.status());
      Status r =
          SendRegistration(*conn, kRoleDisplay, static_cast<std::uint32_t>(j));
      if (!r.ok()) return fail.Set(r);
      Compositor comp(k, config.image_bytes);
      RateMeter meter;
      Buffer composite;
      for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
        if (ts == config.warmup_frames) meter.Start();
        Status s = conn->RecvFrame(composite, Deadline::AfterMillis(60000));
        if (!s.ok()) return fail.Set(s);
        if (config.validate_frames) {
          for (std::size_t tile = 0; tile < k; ++tile) {
            Status v = comp.ValidateTile(composite, tile,
                                         static_cast<std::uint32_t>(tile), ts);
            if (!v.ok()) return fail.Set(v);
          }
        }
        if (ts >= config.warmup_frames) meter.Tick();
      }
      report.display_fps[j] = meter.Rate();
    });
  }

  for (auto& thread : threads) thread.join();
  if (fail.failed()) return fail.first();
  report.min_display_fps =
      *std::min_element(report.display_fps.begin(), report.display_fps.end());
  report.frames_completed = config.num_frames;
  return report;
}

}  // namespace dstampede::app
