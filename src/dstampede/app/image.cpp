#include "dstampede/app/image.hpp"

#include <cstring>

namespace dstampede::app {
namespace {
constexpr std::uint32_t kFrameMagic = 0xF7A3Eu;

void WriteHeader(Buffer& frame, std::uint32_t client_id, Timestamp frame_no) {
  ByteWriter writer(frame);
  writer.U32(kFrameMagic);
  writer.U32(client_id);
  writer.I64(frame_no);
}
}  // namespace

VirtualCamera::VirtualCamera(std::uint32_t client_id, std::size_t frame_bytes)
    : client_id_(client_id), frame_bytes_(frame_bytes) {
  if (frame_bytes_ < kFrameHeaderBytes) frame_bytes_ = kFrameHeaderBytes;
}

Buffer VirtualCamera::Grab(Timestamp frame_no) const {
  Buffer frame;
  frame.reserve(frame_bytes_);
  WriteHeader(frame, client_id_, frame_no);
  Buffer body(frame_bytes_ - frame.size());
  FillPattern(body, (static_cast<std::uint64_t>(client_id_) << 40) ^
                        static_cast<std::uint64_t>(frame_no));
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

Result<FrameInfo> InspectFrame(std::span<const std::uint8_t> frame) {
  ByteReader reader(frame);
  DS_ASSIGN_OR_RETURN(std::uint32_t magic, reader.U32());
  if (magic != kFrameMagic) return InternalError("bad frame magic");
  FrameInfo info;
  DS_ASSIGN_OR_RETURN(info.client_id, reader.U32());
  DS_ASSIGN_OR_RETURN(info.frame_no, reader.I64());
  auto body = frame.subspan(kFrameHeaderBytes);
  if (!CheckPattern(body, (static_cast<std::uint64_t>(info.client_id) << 40) ^
                              static_cast<std::uint64_t>(info.frame_no))) {
    return InternalError("frame body corrupted");
  }
  return info;
}

Compositor::Compositor(std::size_t num_clients, std::size_t frame_bytes)
    : num_clients_(num_clients), frame_bytes_(frame_bytes) {}

Status Compositor::Blend(Buffer& composite, std::size_t index,
                         std::span<const std::uint8_t> frame) const {
  if (index >= num_clients_) return InvalidArgumentError("tile index");
  if (frame.size() != frame_bytes_) {
    return InvalidArgumentError("frame size mismatch");
  }
  if (composite.size() != composite_bytes()) {
    return InvalidArgumentError("composite size mismatch");
  }
  std::memcpy(composite.data() + index * frame_bytes_, frame.data(),
              frame_bytes_);
  return OkStatus();
}

Status Compositor::ValidateTile(std::span<const std::uint8_t> composite,
                                std::size_t index, std::uint32_t client_id,
                                Timestamp frame_no) const {
  if (index >= num_clients_ || composite.size() != composite_bytes()) {
    return InvalidArgumentError("tile out of range");
  }
  auto tile = composite.subspan(index * frame_bytes_, frame_bytes_);
  DS_ASSIGN_OR_RETURN(FrameInfo info, InspectFrame(tile));
  if (info.client_id != client_id || info.frame_no != frame_no) {
    return InternalError("tile holds the wrong frame");
  }
  return OkStatus();
}

}  // namespace dstampede::app
