// Virtual video frames for the §5.2 methodology: "the producer thread
// in the client program reads a 'virtual' camera (a memory buffer)",
// and the display "simply absorbs the composite output". Frames carry a
// small self-describing header so every stage can validate that the
// right client's frame with the right frame number arrived intact.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::app {

inline constexpr std::size_t kFrameHeaderBytes = 16;

// One participant's camera. Grab() synthesizes a frame of exactly
// frame_bytes: [u32 magic][u32 client id][i64 frame number][pattern...].
class VirtualCamera {
 public:
  VirtualCamera(std::uint32_t client_id, std::size_t frame_bytes);

  Buffer Grab(Timestamp frame_no) const;

  std::uint32_t client_id() const { return client_id_; }
  std::size_t frame_bytes() const { return frame_bytes_; }

 private:
  std::uint32_t client_id_;
  std::size_t frame_bytes_;
};

struct FrameInfo {
  std::uint32_t client_id = 0;
  Timestamp frame_no = 0;
};

// Parses and validates one camera frame (header + pattern).
Result<FrameInfo> InspectFrame(std::span<const std::uint8_t> frame);

// The mixer's composite: the K client frames tiled back to back, as the
// paper's display receives "a frame K times bigger than the client
// image size".
class Compositor {
 public:
  Compositor(std::size_t num_clients, std::size_t frame_bytes);

  std::size_t composite_bytes() const { return num_clients_ * frame_bytes_; }

  // Copies one client's frame into its tile. Distinct indices may be
  // filled concurrently (the multi-threaded mixer does).
  Status Blend(Buffer& composite, std::size_t index,
               std::span<const std::uint8_t> frame) const;

  // Allocates a composite-sized buffer.
  Buffer MakeComposite() const { return Buffer(composite_bytes()); }

  // Checks that tile `index` holds a valid frame from `client_id` with
  // this frame number.
  Status ValidateTile(std::span<const std::uint8_t> composite,
                      std::size_t index, std::uint32_t client_id,
                      Timestamp frame_no) const;

 private:
  std::size_t num_clients_;
  std::size_t frame_bytes_;
};

}  // namespace dstampede::app
