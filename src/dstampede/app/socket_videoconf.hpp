// The paper's first application version (§5.2): the same video
// conference written directly on TCP sockets, for comparison with the
// D-Stampede channel versions. A single-threaded mixer accepts one
// producer and one display connection per participant, then loops:
// receive one frame from each producer, composite, send the composite
// to each display. This is the Fig 14 "socket version" baseline — and
// the paper's point that it took "much more effort" than the channel
// version is visible in the bookkeeping below.
#pragma once

#include <cstdint>
#include <vector>

#include "dstampede/common/ids.hpp"
#include "dstampede/common/status.hpp"

namespace dstampede::app {

struct SocketVideoConfConfig {
  std::size_t num_clients = 2;
  std::size_t image_bytes = 74 * 1024;
  Timestamp num_frames = 120;
  Timestamp warmup_frames = 20;
  bool validate_frames = false;
};

struct SocketVideoConfReport {
  std::vector<double> display_fps;
  double min_display_fps = 0.0;
  Timestamp frames_completed = 0;
};

class SocketVideoConfApp {
 public:
  // Self-contained: starts its own TCP server on loopback, runs the
  // client threads, returns the measured sustained frame rates.
  static Result<SocketVideoConfReport> Run(const SocketVideoConfConfig& config);
};

}  // namespace dstampede::app
