// Temporal correlation of multiple streams (paper §2, requirement 2):
// "a stereo vision application would combine images captured at the
// same time from two different camera sensors, and stereo audio
// combines data from two or more microphones".
//
// TemporalCorrelator aligns N channel streams by timestamp. Each call
// to NextTuple() returns one item per input, all carrying the SAME
// timestamp — the smallest common timestamp not yet delivered. Streams
// may skip timestamps (dropped frames); the correlator advances past
// gaps using the align-to-max protocol:
//
//   candidate = cursor
//   repeat: ask every input for its first item at/after candidate;
//           if they all landed on the same timestamp, done;
//           otherwise retry from the maximum seen.
//
// Everything at or below a delivered (or skipped-past) timestamp is
// consume-until'd on every input, so the distributed GC reclaims
// uncorrelatable items promptly — dropped frames don't accumulate.
#pragma once

#include <vector>

#include "dstampede/core/address_space.hpp"

namespace dstampede::app {

struct CorrelatedTuple {
  Timestamp timestamp = kInvalidTimestamp;
  std::vector<core::ItemView> items;  // one per input, same order
};

class TemporalCorrelator {
 public:
  // All connections must be input-capable channel connections usable
  // from `as` (local or remote — location transparent as ever).
  TemporalCorrelator(core::AddressSpace& as,
                     std::vector<core::Connection> inputs)
      : as_(as), inputs_(std::move(inputs)) {}

  // Blocks until one timestamp is present on every input (or deadline).
  // Consumes the tuple and everything older on all inputs.
  Result<CorrelatedTuple> NextTuple(Deadline deadline = Deadline::Infinite());

  // How many candidate timestamps were skipped because at least one
  // stream never produced them (dropped-frame accounting).
  std::uint64_t skipped_timestamps() const { return skipped_; }
  Timestamp cursor() const { return cursor_; }

 private:
  core::AddressSpace& as_;
  std::vector<core::Connection> inputs_;
  Timestamp cursor_ = 0;  // next timestamp we may deliver
  std::uint64_t skipped_ = 0;
};

}  // namespace dstampede::app
