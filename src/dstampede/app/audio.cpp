#include "dstampede/app/audio.hpp"

namespace dstampede::app {
namespace {

constexpr std::uint32_t kChunkMagic = 0xAD10u;

// A cheap deterministic waveform: a participant-specific mix of two
// integer "oscillators". Not audible art, but bit-exactly recomputable
// anywhere, which is what validation needs.
std::int16_t Waveform(std::uint32_t participant, std::uint64_t n) {
  const std::uint64_t a = (participant + 3) * 131ULL;
  const std::uint64_t b = (participant + 7) * 17ULL;
  const auto tri = [](std::uint64_t x, std::uint64_t period) -> std::int32_t {
    const std::uint64_t phase = x % period;
    const std::uint64_t half = period / 2;
    const std::int64_t up = static_cast<std::int64_t>(phase) -
                            static_cast<std::int64_t>(half);
    return static_cast<std::int32_t>(phase < half ? phase : 2 * half - phase) -
           static_cast<std::int32_t>(half / 2) + static_cast<std::int32_t>(up % 3);
  };
  const std::int32_t sample = tri(n * a, 480) * 23 + tri(n * b, 97) * 5;
  return AudioMixer::Saturate(sample);
}

}  // namespace

ToneSource::ToneSource(std::uint32_t participant, AudioFormat format)
    : participant_(participant), format_(format) {}

std::int16_t ToneSource::SampleAt(std::uint64_t n) const {
  return Waveform(participant_, n);
}

Buffer ToneSource::Chunk(Timestamp chunk_no) const {
  Buffer out;
  out.reserve(kAudioHeaderBytes + format_.samples_per_chunk * 2);
  ByteWriter writer(out);
  writer.U32(kChunkMagic);
  writer.U32(participant_);
  writer.I64(chunk_no);
  const std::uint64_t base =
      static_cast<std::uint64_t>(chunk_no) * format_.samples_per_chunk;
  for (std::uint32_t i = 0; i < format_.samples_per_chunk; ++i) {
    writer.U16(static_cast<std::uint16_t>(SampleAt(base + i)));
  }
  return out;
}

Result<AudioChunkInfo> InspectChunk(std::span<const std::uint8_t> chunk) {
  ByteReader reader(chunk);
  DS_ASSIGN_OR_RETURN(std::uint32_t magic, reader.U32());
  if (magic != kChunkMagic) return InternalError("bad audio magic");
  AudioChunkInfo info;
  DS_ASSIGN_OR_RETURN(info.participant, reader.U32());
  DS_ASSIGN_OR_RETURN(info.chunk_no, reader.I64());
  if (reader.remaining() % 2 != 0) return InternalError("odd PCM length");
  info.samples = reader.remaining() / 2;
  return info;
}

Result<std::int16_t> ChunkSample(std::span<const std::uint8_t> chunk,
                                 std::size_t i) {
  const std::size_t offset = kAudioHeaderBytes + i * 2;
  if (offset + 2 > chunk.size()) return InvalidArgumentError("sample index");
  return static_cast<std::int16_t>(
      static_cast<std::uint16_t>((chunk[offset] << 8) | chunk[offset + 1]));
}

Result<Buffer> AudioMixer::Mix(std::span<const Buffer> chunks) const {
  if (chunks.empty()) return InvalidArgumentError("nothing to mix");
  Timestamp chunk_no = kInvalidTimestamp;
  for (const Buffer& chunk : chunks) {
    DS_ASSIGN_OR_RETURN(AudioChunkInfo info, InspectChunk(chunk));
    if (info.samples != format_.samples_per_chunk) {
      return InvalidArgumentError("sample count mismatch");
    }
    if (chunk_no == kInvalidTimestamp) {
      chunk_no = info.chunk_no;
    } else if (info.chunk_no != chunk_no) {
      return InvalidArgumentError("mixing chunks of different timestamps");
    }
  }

  Buffer out;
  out.reserve(kAudioHeaderBytes + format_.samples_per_chunk * 2);
  ByteWriter writer(out);
  writer.U32(kChunkMagic);
  writer.U32(kMixedParticipant);
  writer.I64(chunk_no);
  for (std::uint32_t i = 0; i < format_.samples_per_chunk; ++i) {
    std::int32_t sum = 0;
    for (const Buffer& chunk : chunks) {
      DS_ASSIGN_OR_RETURN(std::int16_t sample, ChunkSample(chunk, i));
      sum += sample;
    }
    writer.U16(static_cast<std::uint16_t>(Saturate(sum)));
  }
  return out;
}

}  // namespace dstampede::app
