#include "dstampede/app/tracker.hpp"

#include <atomic>
#include <map>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/sync.hpp"
#include "dstampede/common/thread.hpp"

namespace dstampede::app {
namespace {

constexpr std::uint32_t kSentinelFragment = 0xffffffffu;

// Fragment payload: [u32 fragment index][u32 fragment count][body...]
Buffer MakeFragment(std::uint32_t index, std::uint32_t count,
                    std::span<const std::uint8_t> body) {
  Buffer out;
  ByteWriter writer(out);
  writer.U32(index);
  writer.U32(count);
  writer.Bytes(body);
  return out;
}

// Result payload: [u32 fragment index][u64 checksum]
Buffer MakeResult(std::uint32_t index, std::uint64_t checksum) {
  Buffer out;
  ByteWriter writer(out);
  writer.U32(index);
  writer.U64(checksum);
  return out;
}

class FailBox {
 public:
  void Set(const Status& status) {
    if (status.ok()) return;
    ds::MutexLock lock(mu_);
    if (first_.ok()) first_ = status;
    failed_.store(true);
  }
  bool failed() const { return failed_.load(std::memory_order_relaxed); }
  Status first() const {
    ds::MutexLock lock(mu_);
    return first_;
  }

 private:
  mutable ds::Mutex mu_{"app.failbox.mu"};
  Status first_ DS_GUARDED_BY(mu_);
  std::atomic<bool> failed_{false};
};

Deadline OpDeadline() { return Deadline::AfterMillis(60000); }

}  // namespace

std::uint64_t AnalyzeFragment(std::span<const std::uint8_t> data) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t byte : data) {
    hash ^= byte;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

Result<TrackerReport> SplitJoinPipeline::Run(core::Runtime& runtime,
                                             const TrackerConfig& config) {
  if (config.fragments_per_frame == 0 || config.num_workers == 0) {
    return InvalidArgumentError("bad tracker config");
  }
  core::AddressSpace& work_as = runtime.as(config.work_queue_as);
  core::AddressSpace& result_as = runtime.as(config.result_queue_as);

  core::QueueAttr work_attr;
  work_attr.capacity_items = config.queue_capacity;
  work_attr.debug_name = "tracker/work";
  DS_ASSIGN_OR_RETURN(QueueId work_q, work_as.CreateQueue(work_attr));
  core::QueueAttr result_attr;
  result_attr.capacity_items = config.queue_capacity;
  result_attr.debug_name = "tracker/results";
  DS_ASSIGN_OR_RETURN(QueueId result_q, result_as.CreateQueue(result_attr));

  FailBox fail;
  TrackerReport report;
  report.per_worker_fragments.assign(config.num_workers, 0);
  const std::uint32_t frag_count =
      static_cast<std::uint32_t>(config.fragments_per_frame);

  std::vector<Thread> threads;

  // --- splitter ---------------------------------------------------------
  threads.emplace_back([&] {
    auto out = work_as.Connect(work_q, core::ConnMode::kOutput, "splitter");
    if (!out.ok()) return fail.Set(out.status());
    for (Timestamp ts = 0; ts < config.num_frames && !fail.failed(); ++ts) {
      Buffer frame(config.frame_bytes);
      FillPattern(frame, static_cast<std::uint64_t>(ts));
      const std::size_t chunk =
          (frame.size() + config.fragments_per_frame - 1) /
          config.fragments_per_frame;
      for (std::uint32_t f = 0; f < frag_count; ++f) {
        const std::size_t begin = std::min<std::size_t>(f * chunk, frame.size());
        const std::size_t end =
            std::min<std::size_t>(begin + chunk, frame.size());
        Buffer fragment = MakeFragment(
            f, frag_count,
            std::span<const std::uint8_t>(frame.data() + begin, end - begin));
        Status s = work_as.Put(*out, ts, std::move(fragment), OpDeadline());
        if (!s.ok()) return fail.Set(s);
      }
    }
    // One sentinel per tracker so every worker drains and exits.
    for (std::size_t w = 0; w < config.num_workers; ++w) {
      Buffer sentinel = MakeFragment(kSentinelFragment, 0, {});
      Status s = work_as.Put(*out, config.num_frames, std::move(sentinel),
                             OpDeadline());
      if (!s.ok()) return fail.Set(s);
    }
    (void)work_as.Disconnect(*out);
  });

  // --- trackers ---------------------------------------------------------
  for (std::size_t w = 0; w < config.num_workers; ++w) {
    threads.emplace_back([&, w] {
      auto in = work_as.Connect(work_q, core::ConnMode::kInput, "tracker");
      auto out =
          result_as.Connect(result_q, core::ConnMode::kOutput, "tracker");
      if (!in.ok()) return fail.Set(in.status());
      if (!out.ok()) return fail.Set(out.status());
      std::uint64_t processed = 0;
      while (!fail.failed()) {
        auto item = work_as.Get(*in, OpDeadline());
        if (!item.ok()) return fail.Set(item.status());
        ByteReader reader(item->payload.span());
        auto index = reader.U32();
        auto count = reader.U32();
        if (!index.ok() || !count.ok()) {
          return fail.Set(InternalError("bad fragment"));
        }
        if (*index == kSentinelFragment) {
          (void)work_as.Consume(*in, item->timestamp);
          break;
        }
        const auto body = item->payload.span().subspan(8);
        const std::uint64_t checksum = AnalyzeFragment(body);
        Status p = result_as.Put(*out, item->timestamp,
                                 MakeResult(*index, checksum), OpDeadline());
        if (!p.ok()) return fail.Set(p);
        Status c = work_as.Consume(*in, item->timestamp);
        if (!c.ok()) return fail.Set(c);
        ++processed;
      }
      report.per_worker_fragments[w] = processed;
      (void)work_as.Disconnect(*in);
      (void)result_as.Disconnect(*out);
    });
  }

  // --- joiner -----------------------------------------------------------
  threads.emplace_back([&] {
    auto in = result_as.Connect(result_q, core::ConnMode::kInput, "joiner");
    if (!in.ok()) return fail.Set(in.status());
    std::map<Timestamp, std::map<std::uint32_t, std::uint64_t>> partial;
    Timestamp joined = 0;
    std::uint64_t fragments = 0;
    const std::uint64_t expected_total =
        static_cast<std::uint64_t>(config.num_frames) * frag_count;
    while (fragments < expected_total && !fail.failed()) {
      auto item = result_as.Get(*in, OpDeadline());
      if (!item.ok()) return fail.Set(item.status());
      ByteReader reader(item->payload.span());
      auto index = reader.U32();
      auto checksum = reader.U64();
      if (!index.ok() || !checksum.ok()) {
        return fail.Set(InternalError("bad result"));
      }
      auto& frame_parts = partial[item->timestamp];
      if (!frame_parts.emplace(*index, *checksum).second) {
        return fail.Set(InternalError("duplicate fragment result"));
      }
      ++fragments;
      Status c = result_as.Consume(*in, item->timestamp);
      if (!c.ok()) return fail.Set(c);
      if (frame_parts.size() == frag_count) {
        // Verify the join against a locally recomputed frame.
        Buffer frame(config.frame_bytes);
        FillPattern(frame, static_cast<std::uint64_t>(item->timestamp));
        const std::size_t chunk =
            (frame.size() + config.fragments_per_frame - 1) /
            config.fragments_per_frame;
        for (std::uint32_t f = 0; f < frag_count; ++f) {
          const std::size_t begin =
              std::min<std::size_t>(f * chunk, frame.size());
          const std::size_t end =
              std::min<std::size_t>(begin + chunk, frame.size());
          const std::uint64_t expect = AnalyzeFragment(
              std::span<const std::uint8_t>(frame.data() + begin, end - begin));
          if (frame_parts.at(f) != expect) {
            return fail.Set(InternalError("checksum mismatch at join"));
          }
        }
        partial.erase(item->timestamp);
        ++joined;
      }
    }
    report.frames_joined = joined;
    report.fragments_processed = fragments;
    (void)result_as.Disconnect(*in);
  });

  for (auto& thread : threads) thread.join();
  if (fail.failed()) return fail.first();
  return report;
}

}  // namespace dstampede::app
