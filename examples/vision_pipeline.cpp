// Task-and-data parallelism (Fig 3): a splitter partitions each video
// frame into fragments that share the frame's timestamp and drops them
// into a D-Stampede queue; tracker threads analyze fragments in
// parallel (each fragment goes to exactly one tracker); a joiner
// stitches the per-timestamp results back together. Run with:
//
//   vision_pipeline [frames=24] [fragments=6] [trackers=4] [frame_kb=128]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/tracker.hpp"

using namespace dstampede;

int main(int argc, char** argv) {
  app::TrackerConfig config;
  config.num_frames = argc > 1 ? std::atoll(argv[1]) : 24;
  config.fragments_per_frame =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 6;
  config.num_workers =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 4;
  config.frame_bytes =
      (argc > 4 ? static_cast<std::size_t>(std::atoi(argv[4])) : 128) * 1024;
  // Work queue and result queue on different address spaces, so
  // fragments and results cross the cluster transport.
  config.work_queue_as = 0;
  config.result_queue_as = 1;

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime: %s\n", runtime.status().ToString().c_str());
    return 1;
  }

  std::printf("vision pipeline: %lld frames x %zu fragments, %zu trackers\n",
              static_cast<long long>(config.num_frames),
              config.fragments_per_frame, config.num_workers);

  const TimePoint start = Now();
  auto report = app::SplitJoinPipeline::Run(**runtime, config);
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const double secs =
      static_cast<double>(ToMicros(Now() - start)) / 1e6;

  std::printf("joined %lld frames (%llu fragments, all checksums verified) "
              "in %.2fs\n",
              static_cast<long long>(report->frames_joined),
              static_cast<unsigned long long>(report->fragments_processed),
              secs);
  for (std::size_t w = 0; w < report->per_worker_fragments.size(); ++w) {
    std::printf("  tracker %zu analyzed %llu fragments\n", w,
                static_cast<unsigned long long>(
                    report->per_worker_fragments[w]));
  }
  (*runtime)->Shutdown();
  return 0;
}
