// Audio + video meeting — the application the paper's acknowledgments
// credit to Russ Keldorff and Anand Lakshminarayan, rebuilt on this
// runtime. Each participant's end devices stream PCM audio chunks and
// video frames into their own channels; on the cluster an audio bridge
// mixes the voices (saturating sample sums) and a video mixer tiles
// the frames; each participant's station then *temporally correlates*
// the mixed-audio and composite-video streams so what it "plays" is
// lip-synced — the §2 requirement this system exists for. The video
// side drops frames now and then, so correlation has to skip.
//
//   av_meeting [participants=3] [chunks=50] [video_drop_every=9]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/audio.hpp"
#include "dstampede/app/correlator.hpp"
#include "dstampede/app/image.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

namespace {
constexpr std::size_t kVideoBytes = 8 * 1024;
const app::AudioFormat kFormat{};  // 16 kHz, 20 ms chunks
}  // namespace

int main(int argc, char** argv) {
  const std::size_t participants =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  const Timestamp chunks = argc > 2 ? std::atoll(argv[2]) : 50;
  const Timestamp drop_every = argc > 3 ? std::atoll(argv[3]) : 9;

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  rt_opts.dispatcher_threads = 16;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) return 1;
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) return 1;
  core::AddressSpace& server = (*runtime)->as(1);

  // Bridge output channels.
  auto audio_out_ch = server.CreateChannel();
  auto video_out_ch = server.CreateChannel();
  if (!audio_out_ch.ok() || !video_out_ch.ok()) return 1;
  (void)server.NsRegister(core::NsEntry{"meeting/audio-mix",
                                        core::NsEntry::Kind::kChannel,
                                        audio_out_ch->bits(), "bridge mix"});
  (void)server.NsRegister(core::NsEntry{"meeting/video-mix",
                                        core::NsEntry::Kind::kChannel,
                                        video_out_ch->bits(), "composite"});

  std::vector<std::thread> threads;

  // Each participant streams audio and (lossy) video from end devices.
  for (std::size_t p = 0; p < participants; ++p) {
    threads.emplace_back([&, p] {
      client::CClient::Options opts;
      opts.server = (*listener)->addr();
      opts.name = "station-" + std::to_string(p);
      auto device = client::CClient::Join(opts);
      if (!device.ok()) return;
      auto audio_ch = (*device)->CreateChannel();
      auto video_ch = (*device)->CreateChannel();
      if (!audio_ch.ok() || !video_ch.ok()) return;
      (void)(*device)->NsRegister(core::NsEntry{
          "meeting/audio/" + std::to_string(p),
          core::NsEntry::Kind::kChannel, audio_ch->bits(), "mic"});
      (void)(*device)->NsRegister(core::NsEntry{
          "meeting/video/" + std::to_string(p),
          core::NsEntry::Kind::kChannel, video_ch->bits(), "camera"});
      auto audio_out = (*device)->Connect(*audio_ch, core::ConnMode::kOutput);
      auto video_out = (*device)->Connect(*video_ch, core::ConnMode::kOutput);
      if (!audio_out.ok() || !video_out.ok()) return;

      app::ToneSource mic(static_cast<std::uint32_t>(p), kFormat);
      app::VirtualCamera camera(static_cast<std::uint32_t>(p), kVideoBytes);
      for (Timestamp ts = 0; ts < chunks; ++ts) {
        if (!(*device)->Put(*audio_out, ts, mic.Chunk(ts)).ok()) return;
        const bool drop =
            drop_every > 0 && ts % drop_every == drop_every - 1;
        if (!drop) {
          if (!(*device)->Put(*video_out, ts, camera.Grab(ts)).ok()) return;
        }
      }
      (void)(*device)->Leave();
    });
  }

  // Audio bridge: mix all participants per chunk.
  threads.emplace_back([&] {
    std::vector<core::Connection> inputs;
    for (std::size_t p = 0; p < participants; ++p) {
      auto entry = server.NsLookup("meeting/audio/" + std::to_string(p),
                                   Deadline::AfterMillis(10000));
      if (!entry.ok()) return;
      auto conn = server.Connect(ChannelId::FromBits(entry->id_bits),
                                 core::ConnMode::kInput, "bridge");
      if (!conn.ok()) return;
      inputs.push_back(*conn);
    }
    auto out = server.Connect(*audio_out_ch, core::ConnMode::kOutput);
    if (!out.ok()) return;
    app::AudioMixer mixer(kFormat);
    for (Timestamp ts = 0; ts < chunks; ++ts) {
      std::vector<Buffer> voice;
      for (auto& input : inputs) {
        auto item = server.Get(input, core::GetSpec::Exact(ts),
                               Deadline::AfterMillis(30000));
        if (!item.ok()) return;
        voice.push_back(item->payload.ToVector());
        (void)server.Consume(input, ts);
      }
      auto mixed = mixer.Mix(voice);
      if (!mixed.ok()) return;
      if (!server.Put(*out, ts, std::move(mixed).value()).ok()) return;
    }
  });

  // Video mixer: composite whatever frames exist per timestamp (drops
  // simply never appear in the output channel).
  threads.emplace_back([&] {
    std::vector<core::Connection> inputs;
    for (std::size_t p = 0; p < participants; ++p) {
      auto entry = server.NsLookup("meeting/video/" + std::to_string(p),
                                   Deadline::AfterMillis(10000));
      if (!entry.ok()) return;
      auto conn = server.Connect(ChannelId::FromBits(entry->id_bits),
                                 core::ConnMode::kInput, "vmixer");
      if (!conn.ok()) return;
      inputs.push_back(*conn);
    }
    auto out = server.Connect(*video_out_ch, core::ConnMode::kOutput);
    if (!out.ok()) return;
    app::TemporalCorrelator aligner(server, std::move(inputs));
    app::Compositor comp(participants, kVideoBytes);
    for (;;) {
      auto tuple = aligner.NextTuple(Deadline::AfterMillis(2000));
      if (!tuple.ok()) return;  // producers done
      Buffer composite = comp.MakeComposite();
      for (std::size_t p = 0; p < participants; ++p) {
        if (!comp.Blend(composite, p, tuple->items[p].payload.span()).ok()) {
          return;
        }
      }
      if (!server.Put(*out, tuple->timestamp, std::move(composite)).ok()) {
        return;
      }
    }
  });

  // One station "plays" the meeting: correlates mixed audio against
  // composite video and verifies the audio mix bit-exactly.
  std::uint64_t played = 0, audio_ok = 0;
  threads.emplace_back([&] {
    auto audio_in = server.Connect(*audio_out_ch, core::ConnMode::kInput);
    auto video_in = server.Connect(*video_out_ch, core::ConnMode::kInput);
    if (!audio_in.ok() || !video_in.ok()) return;
    app::TemporalCorrelator av(server, {*audio_in, *video_in});
    for (;;) {
      auto tuple = av.NextTuple(Deadline::AfterMillis(3000));
      if (!tuple.ok()) break;
      ++played;
      // Validate one audio sample of the mix against the recomputed
      // expected value.
      const Timestamp ts = tuple->timestamp;
      const std::size_t probe = 13;
      auto got = app::ChunkSample(tuple->items[0].payload.span(), probe);
      if (!got.ok()) return;
      std::int32_t sum = 0;
      for (std::size_t p = 0; p < participants; ++p) {
        app::ToneSource mic(static_cast<std::uint32_t>(p), kFormat);
        sum += mic.SampleAt(
            static_cast<std::uint64_t>(ts) * kFormat.samples_per_chunk + probe);
      }
      if (*got == app::AudioMixer::Saturate(sum)) ++audio_ok;
    }
  });

  for (auto& t : threads) t.join();
  std::printf("meeting over: %llu lip-synced AV pairs played, "
              "%llu audio mixes verified bit-exact "
              "(%zu participants, video drops 1 in %lld)\n",
              static_cast<unsigned long long>(played),
              static_cast<unsigned long long>(audio_ok),
              participants, static_cast<long long>(drop_every));
  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return played > 0 && played == audio_ok ? 0 : 1;
}
