// Real-time synchrony + end devices (§3.1): a camera end device joins
// the cluster through the client library, publishes its channel on the
// name server, and paces itself with D-Stampede's loose temporal
// synchrony — "a camera ... can pace itself to grab images and put
// them into its output channel at 30 frames per second, using absolute
// frame numbers as timestamps". A display end device consumes the
// stream and reports the achieved rate, while a slippage handler
// counts missed ticks. Run with:
//
//   paced_camera [fps=30] [seconds=2] [image_kb=16]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/image.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/common/stats.hpp"
#include "dstampede/core/rt_sync.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

int main(int argc, char** argv) {
  const double fps = argc > 1 ? std::atof(argv[1]) : 30.0;
  const double seconds = argc > 2 ? std::atof(argv[2]) : 2.0;
  const std::size_t image_kb =
      argc > 3 ? static_cast<std::size_t>(std::atoi(argv[3])) : 16;
  const Timestamp frames = static_cast<Timestamp>(fps * seconds);

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 1;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) return 1;
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) return 1;

  std::printf("camera pacing at %.0f fps for %.1fs (%lld frames)\n", fps,
              seconds, static_cast<long long>(frames));

  // Camera end device.
  std::thread camera_thread([&] {
    client::CClient::Options opts;
    opts.server = (*listener)->addr();
    opts.name = "camera";
    auto camera = client::CClient::Join(opts);
    if (!camera.ok()) return;
    auto ch = (*camera)->CreateChannel();
    if (!ch.ok()) return;
    (void)(*camera)->NsRegister(core::NsEntry{
        "paced/video", core::NsEntry::Kind::kChannel, ch->bits(),
        "paced camera stream"});
    auto out = (*camera)->Connect(*ch, core::ConnMode::kOutput);
    if (!out.ok()) return;

    app::VirtualCamera sensor(0, image_kb * 1024);
    std::uint64_t slips = 0;
    core::RtSync pace(
        std::chrono::duration_cast<Duration>(
            std::chrono::duration<double>(1.0 / fps)),
        Millis(5), [&](std::int64_t slip_us) {
          ++slips;
          std::printf("  [camera] slipped %lldus past tolerance\n",
                      static_cast<long long>(slip_us));
        });
    pace.Start();
    for (Timestamp frame = 0; frame < frames; ++frame) {
      if (!(*camera)->Put(*out, frame, sensor.Grab(frame)).ok()) return;
      (void)pace.Synchronize();
    }
    std::printf("  [camera] %lld frames put, %llu slips\n",
                static_cast<long long>(frames),
                static_cast<unsigned long long>(slips));
    (void)(*camera)->Leave();
  });

  // Display end device.
  std::thread display_thread([&] {
    client::CClient::Options opts;
    opts.server = (*listener)->addr();
    opts.name = "display";
    auto display = client::CClient::Join(opts);
    if (!display.ok()) return;
    auto entry = (*display)->NsLookup("paced/video", Deadline::AfterMillis(5000));
    if (!entry.ok()) return;
    auto in = (*display)->Connect(ChannelId::FromBits(entry->id_bits),
                                  core::ConnMode::kInput);
    if (!in.ok()) return;

    RateMeter meter;
    meter.Start();
    for (Timestamp frame = 0; frame < frames; ++frame) {
      auto item = (*display)->Get(*in, core::GetSpec::Exact(frame),
                                  Deadline::AfterMillis(10000));
      if (!item.ok()) return;
      auto info = app::InspectFrame(item->payload.span());
      if (!info.ok() || info->frame_no != frame) {
        std::fprintf(stderr, "frame %lld failed validation\n",
                     static_cast<long long>(frame));
        return;
      }
      (void)(*display)->Consume(*in, frame);
      meter.Tick();
    }
    std::printf("  [display] received %lld validated frames at %.1f fps "
                "(target %.0f)\n",
                static_cast<long long>(frames), meter.Rate(), fps);
    (void)(*display)->Leave();
  });

  camera_thread.join();
  display_thread.join();
  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
