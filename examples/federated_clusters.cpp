// Multi-cluster federation (§6 future work, implemented): one
// D-Stampede application spanning two heterogeneous clusters. A camera
// end device joins cluster A through A's listener and publishes its
// channel; an analyzer thread in cluster B finds it through the
// federation-wide name server and consumes the stream — the same calls,
// across cluster boundaries. Run with:
//
//   federated_clusters [frames=30] [image_kb=8]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/image.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/federation.hpp"

using namespace dstampede;

int main(int argc, char** argv) {
  const Timestamp frames = argc > 1 ? std::atoll(argv[1]) : 30;
  const std::size_t image_kb =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;

  // Two heterogeneous clusters: A is a small edge cluster, B a larger
  // compute cluster with a faster GC cadence.
  core::Federation::Options fed_opts;
  fed_opts.clusters = {
      core::Federation::ClusterSpec{.num_address_spaces = 1,
                                    .dispatcher_threads = 4},
      core::Federation::ClusterSpec{.num_address_spaces = 2,
                                    .dispatcher_threads = 8,
                                    .gc_interval = Millis(5)},
  };
  auto federation = core::Federation::Create(fed_opts);
  if (!federation.ok()) {
    std::fprintf(stderr, "federation: %s\n",
                 federation.status().ToString().c_str());
    return 1;
  }
  auto listener_a = client::Listener::Start((*federation)->cluster(0));
  if (!listener_a.ok()) return 1;

  std::printf("federation: cluster A (%zu AS) + cluster B (%zu AS)\n",
              (*federation)->cluster(0).size(),
              (*federation)->cluster(1).size());

  // Camera joins cluster A.
  std::thread camera([&] {
    client::CClient::Options opts;
    opts.server = (*listener_a)->addr();
    opts.name = "edge-camera";
    auto cam = client::CClient::Join(opts);
    if (!cam.ok()) return;
    auto ch = (*cam)->CreateChannel();
    if (!ch.ok()) return;
    (void)(*cam)->NsRegister(core::NsEntry{
        "federated/video", core::NsEntry::Kind::kChannel, ch->bits(),
        "camera on cluster A"});
    app::VirtualCamera sensor(0, image_kb * 1024);
    auto out = (*cam)->Connect(*ch, core::ConnMode::kOutput);
    if (!out.ok()) return;
    for (Timestamp ts = 0; ts < frames; ++ts) {
      if (!(*cam)->Put(*out, ts, sensor.Grab(ts)).ok()) return;
    }
    std::printf("  [camera@clusterA] streamed %lld frames\n",
                static_cast<long long>(frames));
    (void)(*cam)->Leave();
  });

  // Analyzer runs in cluster B and reads across the cluster boundary.
  core::AddressSpace& analyzer_as = (*federation)->cluster(1).as(1);
  std::thread analyzer([&] {
    auto entry = analyzer_as.NsLookup("federated/video",
                                      Deadline::AfterMillis(10000));
    if (!entry.ok()) {
      std::fprintf(stderr, "lookup: %s\n",
                   entry.status().ToString().c_str());
      return;
    }
    auto in = analyzer_as.Connect(ChannelId::FromBits(entry->id_bits),
                                  core::ConnMode::kInput, "analyzer@B");
    if (!in.ok()) return;
    Timestamp validated = 0;
    for (Timestamp ts = 0; ts < frames; ++ts) {
      auto item = analyzer_as.Get(*in, core::GetSpec::Exact(ts),
                                  Deadline::AfterMillis(10000));
      if (!item.ok()) return;
      auto info = app::InspectFrame(item->payload.span());
      if (!info.ok() || info->frame_no != ts) return;
      (void)analyzer_as.ConsumeUntil(*in, ts);
      ++validated;
    }
    std::printf("  [analyzer@clusterB] validated %lld frames across the "
                "cluster boundary\n",
                static_cast<long long>(validated));
  });

  camera.join();
  analyzer.join();
  (*listener_a)->Shutdown();
  (*federation)->Shutdown();
  return 0;
}
