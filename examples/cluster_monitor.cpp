// Cluster observability: runs a short mixed workload (a conference and
// a split/track/join pipeline) and then prints the operational state of
// every address space — STM op counters, transport counters, GC
// activity — plus the listener's surrogate census. This is the view an
// operator of a D-Stampede deployment would watch. Run with:
//
//   cluster_monitor [participants=3] [frames=40]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/tracker.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

using namespace dstampede;

namespace {

void PrintAsStats(core::AddressSpace& as) {
  const core::AsStats& s = as.stats();
  const clf::EndpointStats& t = as.transport_stats();
  std::printf(
      "AS%-3u puts=%-6llu gets=%-6llu consumes=%-6llu attach=%-4llu "
      "detach=%-4llu ns=%-4llu\n"
      "      rpc_out=%-6llu served=%-6llu put_MB=%-7.1f got_MB=%-7.1f\n"
      "      clf: data_tx=%llu data_rx=%llu retx=%llu acks=%llu dups=%llu "
      "msgs=%llu\n"
      "      gc : sweeps=%llu notices=%llu\n",
      AsIndex(as.id()), static_cast<unsigned long long>(s.puts.load()),
      static_cast<unsigned long long>(s.gets.load()),
      static_cast<unsigned long long>(s.consumes.load()),
      static_cast<unsigned long long>(s.attaches.load()),
      static_cast<unsigned long long>(s.detaches.load()),
      static_cast<unsigned long long>(s.ns_ops.load()),
      static_cast<unsigned long long>(s.remote_calls.load()),
      static_cast<unsigned long long>(s.requests_served.load()),
      static_cast<double>(s.bytes_put.load()) / (1024.0 * 1024.0),
      static_cast<double>(s.bytes_got.load()) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(t.data_packets_sent.load()),
      static_cast<unsigned long long>(t.data_packets_received.load()),
      static_cast<unsigned long long>(t.retransmissions.load()),
      static_cast<unsigned long long>(t.acks_sent.load()),
      static_cast<unsigned long long>(t.duplicates_discarded.load()),
      static_cast<unsigned long long>(t.messages_delivered.load()),
      static_cast<unsigned long long>(as.gc().sweeps()),
      static_cast<unsigned long long>(as.gc().notices_total()));
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t participants =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  const Timestamp frames = argc > 2 ? std::atoll(argv[2]) : 40;

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 3;
  rt_opts.dispatcher_threads = 16;
  rt_opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) return 1;
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) return 1;

  // Workload 1: a conference.
  app::VideoConfConfig conf;
  conf.num_clients = participants;
  conf.image_bytes = 16 * 1024;
  conf.num_frames = frames;
  conf.warmup_frames = frames / 6;
  conf.multithreaded_mixer = true;
  conf.mixer_as = 2;
  auto report = app::VideoConfApp::Run(**runtime, **listener, conf);
  if (!report.ok()) {
    std::fprintf(stderr, "conference: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  // Workload 2: a tracking pipeline.
  app::TrackerConfig tracker;
  tracker.num_frames = frames / 2;
  tracker.fragments_per_frame = 4;
  tracker.num_workers = 3;
  tracker.frame_bytes = 32 * 1024;
  tracker.work_queue_as = 0;
  tracker.result_queue_as = 1;
  auto tracked = app::SplitJoinPipeline::Run(**runtime, tracker);
  if (!tracked.ok()) {
    std::fprintf(stderr, "tracker: %s\n", tracked.status().ToString().c_str());
    return 1;
  }

  std::printf("workloads done: conference %.0f fps (slowest display), "
              "%lld frames tracked\n\n",
              report->min_display_fps,
              static_cast<long long>(tracked->frames_joined));
  std::printf("--- cluster state ---\n");
  for (std::size_t i = 0; i < (*runtime)->size(); ++i) {
    PrintAsStats((*runtime)->as(i));
  }
  std::printf("--- end devices ---\n");
  std::printf("surrogates: %zu total, %zu active, %zu left, %zu parked, "
              "%zu reaped\n",
              (*listener)->surrogates_total(),
              (*listener)->surrogates_in(client::Surrogate::State::kActive),
              (*listener)->surrogates_in(client::Surrogate::State::kLeft),
              (*listener)->surrogates_in(client::Surrogate::State::kParked),
              (*listener)->surrogates_in(client::Surrogate::State::kReaped));

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
