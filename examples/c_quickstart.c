/* c_quickstart.c — the paper's producer/consumer pseudocode through the
 * flat C API (the interface the original D-Stampede exported to C
 * application programmers). Compiled as plain C.
 *
 * A two-address-space cluster; the producer puts timestamped items into
 * a channel owned by AS 1, found via the name server; the consumer gets
 * them by timestamp, validates, and consumes (triggering distributed
 * GC). A real-time pacer throttles the producer to ~100 items/sec.
 */
#include <stdio.h>
#include <string.h>

#include "dstampede/capi/dstampede.h"

#define FRAMES 10

int main(void) {
  spd_runtime* rt = NULL;
  spd_status rc = spd_runtime_create(2, &rt);
  if (rc != SPD_OK) {
    fprintf(stderr, "runtime: %s\n", spd_status_name(rc));
    return 1;
  }

  uint64_t chan = 0;
  rc = spd_chan_create(rt, /*as=*/1, /*capacity=*/0, &chan);
  if (rc != SPD_OK) return 1;
  rc = spd_ns_register(rt, 1, "c-demo/frames", chan, 0, "demo stream");
  if (rc != SPD_OK) return 1;

  /* Producer side (AS 0): look up the channel, connect, put. */
  uint64_t found = 0;
  int is_queue = 0;
  rc = spd_ns_lookup(rt, 0, "c-demo/frames", 5000, &found, &is_queue);
  if (rc != SPD_OK || is_queue) return 1;

  spd_conn out;
  rc = spd_chan_connect(rt, 0, found, SPD_OUTPUT, &out);
  if (rc != SPD_OK) return 1;

  spd_rt_sync* pace = spd_rt_sync_create(10000 /*10ms tick*/, 2000);
  spd_timestamp ts;
  for (ts = 0; ts < FRAMES; ++ts) {
    char item[64];
    snprintf(item, sizeof item, "frame #%lld", (long long)ts);
    rc = spd_put_item(rt, 0, &out, ts, item, strlen(item) + 1,
                      SPD_WAIT_FOREVER);
    if (rc != SPD_OK) {
      fprintf(stderr, "put: %s\n", spd_status_name(rc));
      return 1;
    }
    (void)spd_rt_sync_wait(pace);
  }
  printf("[producer] put %d items, %llu pacing slips\n", FRAMES,
         (unsigned long long)spd_rt_sync_slips(pace));
  spd_rt_sync_destroy(pace);

  /* Consumer side (AS 1): exact-timestamp gets + consume. */
  spd_conn in;
  rc = spd_chan_connect(rt, 1, chan, SPD_INPUT, &in);
  if (rc != SPD_OK) return 1;
  for (ts = 0; ts < FRAMES; ++ts) {
    char buf[64];
    size_t len = 0;
    rc = spd_get_item(rt, 1, &in, ts, buf, sizeof buf, &len, 5000);
    if (rc != SPD_OK) {
      fprintf(stderr, "get %lld: %s\n", (long long)ts, spd_status_name(rc));
      return 1;
    }
    printf("[consumer] ts=%lld: \"%s\" (%zu bytes)\n", (long long)ts, buf,
           len);
    rc = spd_consume_item(rt, 1, &in, ts);
    if (rc != SPD_OK) return 1;
  }

  /* A second get of a consumed timestamp must report garbage. */
  {
    char buf[8];
    size_t len = 0;
    rc = spd_get_item(rt, 1, &in, 0, buf, sizeof buf, &len, 0);
    printf("re-get of consumed ts=0: %s (expected "
           "SPD_ERR_GARBAGE_COLLECTED)\n",
           spd_status_name(rc));
    if (rc != SPD_ERR_GARBAGE_COLLECTED) return 1;
  }

  spd_disconnect(rt, 0, &out);
  spd_disconnect(rt, 1, &in);
  spd_runtime_destroy(rt);
  printf("done\n");
  return 0;
}
