// Stereo vision by temporal correlation (§2, requirement 2): two
// camera end devices stream frames into their own channels; a fusion
// thread on the cluster correlates the two streams by timestamp and
// "fuses" each aligned pair. The right camera drops frames (as real
// sensors do), so the correlator has to skip uncorrelatable
// timestamps — the skip count is reported, and consume-until keeps the
// dropped frames from accumulating in the channels. Run with:
//
//   stereo_vision [frames=60] [image_kb=16] [drop_every=7]
#include <cstdio>
#include <cstdlib>

#include "dstampede/app/correlator.hpp"
#include "dstampede/app/image.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

int main(int argc, char** argv) {
  const Timestamp frames = argc > 1 ? std::atoll(argv[1]) : 60;
  const std::size_t image_kb =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 16;
  const Timestamp drop_every = argc > 3 ? std::atoll(argv[3]) : 7;

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) return 1;
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) return 1;

  auto camera_thread = [&](const char* name, std::uint32_t id,
                           bool drops_frames) {
    return std::thread([&, name, id, drops_frames] {
      client::CClient::Options opts;
      opts.server = (*listener)->addr();
      opts.name = name;
      auto cam = client::CClient::Join(opts);
      if (!cam.ok()) return;
      auto ch = (*cam)->CreateChannel();
      if (!ch.ok()) return;
      (void)(*cam)->NsRegister(core::NsEntry{
          std::string("stereo/") + name, core::NsEntry::Kind::kChannel,
          ch->bits(), "camera stream"});
      auto out = (*cam)->Connect(*ch, core::ConnMode::kOutput);
      if (!out.ok()) return;
      app::VirtualCamera sensor(id, image_kb * 1024);
      for (Timestamp ts = 0; ts < frames; ++ts) {
        if (drops_frames && drop_every > 0 && ts % drop_every == drop_every - 1) {
          continue;  // sensor hiccup: this frame never happened
        }
        if (!(*cam)->Put(*out, ts, sensor.Grab(ts)).ok()) return;
      }
      (void)(*cam)->Leave();
    });
  };

  std::thread left = camera_thread("left", 0, /*drops_frames=*/false);
  std::thread right = camera_thread("right", 1, /*drops_frames=*/true);

  // Fusion thread on the cluster.
  core::AddressSpace& as = (*runtime)->as(1);
  std::thread fusion([&] {
    std::vector<core::Connection> inputs;
    for (const char* name : {"stereo/left", "stereo/right"}) {
      auto entry = as.NsLookup(name, Deadline::AfterMillis(10000));
      if (!entry.ok()) return;
      auto conn = as.Connect(ChannelId::FromBits(entry->id_bits),
                             core::ConnMode::kInput, "fusion");
      if (!conn.ok()) return;
      inputs.push_back(*conn);
    }
    app::TemporalCorrelator correlator(as, std::move(inputs));
    std::uint64_t fused = 0;
    for (;;) {
      auto tuple = correlator.NextTuple(Deadline::AfterMillis(2000));
      if (!tuple.ok()) break;  // streams ended
      auto l = app::InspectFrame(tuple->items[0].payload.span());
      auto r = app::InspectFrame(tuple->items[1].payload.span());
      if (!l.ok() || !r.ok() || l->frame_no != r->frame_no) {
        std::fprintf(stderr, "correlation violated at ts=%lld\n",
                     static_cast<long long>(tuple->timestamp));
        return;
      }
      ++fused;
    }
    std::printf("fused %llu stereo pairs; skipped %llu timestamps "
                "(right camera drops 1 in %lld)\n",
                static_cast<unsigned long long>(fused),
                static_cast<unsigned long long>(correlator.skipped_timestamps()),
                static_cast<long long>(drop_every));
  });

  left.join();
  right.join();
  fusion.join();
  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
