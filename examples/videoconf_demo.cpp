// Video-conference demo (§4, Fig 5): a cluster of three address
// spaces, a TCP listener for end devices, and N participants each with
// a camera end device and a display end device. Frames flow camera ->
// C_j -> mixer (N_M) -> C_0 -> displays; every frame is content-
// validated end to end. Run with:
//
//   videoconf_demo [participants=3] [image_kb=32] [frames=60] [mt=1]
//                  [linger_sec=0]
//
// With linger_sec > 0 the cluster stays up after the conference so
// dsctl can be pointed at the printed DSCTL_PORT to inspect the
// per-channel space-time state the run left behind.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "dstampede/app/videoconf.hpp"

using namespace dstampede;

int main(int argc, char** argv) {
  const std::size_t participants =
      argc > 1 ? static_cast<std::size_t>(std::atoi(argv[1])) : 3;
  const std::size_t image_kb =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 32;
  const Timestamp frames = argc > 3 ? std::atoll(argv[3]) : 60;
  const bool multithreaded = argc > 4 ? std::atoi(argv[4]) != 0 : true;
  const long linger_sec = argc > 5 ? std::atol(argv[5]) : 0;

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 3;
  rt_opts.dispatcher_threads = 16;
  rt_opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime: %s\n", runtime.status().ToString().c_str());
    return 1;
  }
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) {
    std::fprintf(stderr, "listener: %s\n",
                 listener.status().ToString().c_str());
    return 1;
  }

  std::printf("DSCTL_PORT=%u\n", (*listener)->addr().port);
  std::fflush(stdout);

  app::VideoConfConfig config;
  config.num_clients = participants;
  config.image_bytes = image_kb * 1024;
  config.num_frames = frames;
  config.warmup_frames = frames / 6;
  config.multithreaded_mixer = multithreaded;
  config.mixer_as = 2;
  config.validate_frames = true;

  std::printf(
      "video conference: %zu participants, %zu KB images, %lld frames, "
      "%s mixer\n",
      participants, image_kb, static_cast<long long>(frames),
      multithreaded ? "multi-threaded" : "single-threaded");

  auto report = app::VideoConfApp::Run(**runtime, **listener, config);
  if (!report.ok()) {
    std::fprintf(stderr, "conference failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  for (std::size_t j = 0; j < report->display_fps.size(); ++j) {
    std::printf("  participant %zu display: %.1f frames/sec "
                "(composite %zu KB/frame)\n",
                j, report->display_fps[j],
                participants * image_kb);
  }
  std::printf("sustained (slowest display): %.1f frames/sec; "
              "all %lld frames validated\n",
              report->min_display_fps,
              static_cast<long long>(report->frames_completed));

  if (linger_sec > 0) {
    std::printf("lingering %ld s for dsctl (port %u)\n", linger_sec,
                (*listener)->addr().port);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::seconds(linger_sec));
  }

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
