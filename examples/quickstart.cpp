// Quickstart: the paper's producer/consumer pseudocode (§3), made real.
//
//   /* Producer Thread */                /* Consumer Thread */
//   connect(Channel, output);            connect(Channel, input);
//   for (ts = 0; ts < N; ts++)           for (ts = 0; ts < N; ts++) {
//     put_item(Channel, ts, item);         get_item(Channel, ts, buf);
//                                          consume_item(Channel, ts);
//                                        }
//
// A two-address-space cluster is created in-process; the channel lives
// in AS 1 while the producer runs in AS 0 and the consumer in AS 1 —
// the same Connect/Put/Get/Consume calls work regardless (location
// transparency). Automatic distributed GC reclaims consumed items.
#include <cstdio>

#include "dstampede/core/runtime.hpp"

using namespace dstampede;

int main() {
  core::Runtime::Options options;
  options.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(options);
  if (!runtime.ok()) {
    std::fprintf(stderr, "runtime: %s\n", runtime.status().ToString().c_str());
    return 1;
  }
  core::AddressSpace& as0 = (*runtime)->as(0);
  core::AddressSpace& as1 = (*runtime)->as(1);

  // A system-wide unique channel, created in AS 1 and published through
  // the name server so any thread anywhere can find it.
  auto channel = as1.CreateChannel();
  if (!channel.ok()) return 1;
  (void)as1.NsRegister(core::NsEntry{"quickstart/frames",
                                     core::NsEntry::Kind::kChannel,
                                     channel->bits(), "demo stream"});

  constexpr Timestamp kFrames = 10;

  // Producer thread in AS 0.
  as0.Spawn("producer", [&] {
    auto entry = as0.NsLookup("quickstart/frames", Deadline::AfterMillis(5000));
    if (!entry.ok()) return;
    auto out = as0.Connect(ChannelId::FromBits(entry->id_bits),
                           core::ConnMode::kOutput, "producer");
    if (!out.ok()) return;
    for (Timestamp ts = 0; ts < kFrames; ++ts) {
      std::string item = "frame #" + std::to_string(ts);
      Status s = as0.Put(*out, ts, Buffer(item.begin(), item.end()));
      if (!s.ok()) {
        std::fprintf(stderr, "put: %s\n", s.ToString().c_str());
        return;
      }
      std::printf("[producer@AS0] put ts=%lld (%s)\n",
                  static_cast<long long>(ts), item.c_str());
    }
  });

  // Consumer thread in AS 1, with a GC handler that reports reclaims.
  (void)as1.SetChannelGcHandler(*channel,
                                [](Timestamp ts, const SharedBuffer&) {
                                  std::printf("[gc] reclaimed ts=%lld\n",
                                              static_cast<long long>(ts));
                                });
  as1.Spawn("consumer", [&] {
    auto in = as1.Connect(*channel, core::ConnMode::kInput, "consumer");
    if (!in.ok()) return;
    for (Timestamp ts = 0; ts < kFrames; ++ts) {
      auto item =
          as1.Get(*in, core::GetSpec::Exact(ts), Deadline::AfterMillis(10000));
      if (!item.ok()) {
        std::fprintf(stderr, "get: %s\n", item.status().ToString().c_str());
        return;
      }
      std::printf("[consumer@AS1] got ts=%lld: \"%s\"\n",
                  static_cast<long long>(item->timestamp),
                  item->payload.ToString().c_str());
      (void)as1.Consume(*in, ts);  // signal garbage (§3 pseudocode)
    }
  });

  as0.JoinThreads();
  as1.JoinThreads();

  auto ch = as1.FindChannel(channel->bits());
  std::printf("done: %llu puts, %llu reclaimed, %zu live items\n",
              static_cast<unsigned long long>(ch->total_puts()),
              static_cast<unsigned long long>(ch->total_reclaimed()),
              ch->live_items());
  return 0;
}
