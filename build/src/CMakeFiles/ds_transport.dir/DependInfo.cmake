
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dstampede/transport/socket.cpp" "src/CMakeFiles/ds_transport.dir/dstampede/transport/socket.cpp.o" "gcc" "src/CMakeFiles/ds_transport.dir/dstampede/transport/socket.cpp.o.d"
  "/root/repo/src/dstampede/transport/tcp.cpp" "src/CMakeFiles/ds_transport.dir/dstampede/transport/tcp.cpp.o" "gcc" "src/CMakeFiles/ds_transport.dir/dstampede/transport/tcp.cpp.o.d"
  "/root/repo/src/dstampede/transport/udp.cpp" "src/CMakeFiles/ds_transport.dir/dstampede/transport/udp.cpp.o" "gcc" "src/CMakeFiles/ds_transport.dir/dstampede/transport/udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
