# Empty compiler generated dependencies file for ds_transport.
# This may be replaced when dependencies are built.
