file(REMOVE_RECURSE
  "libds_transport.a"
)
