file(REMOVE_RECURSE
  "CMakeFiles/ds_transport.dir/dstampede/transport/socket.cpp.o"
  "CMakeFiles/ds_transport.dir/dstampede/transport/socket.cpp.o.d"
  "CMakeFiles/ds_transport.dir/dstampede/transport/tcp.cpp.o"
  "CMakeFiles/ds_transport.dir/dstampede/transport/tcp.cpp.o.d"
  "CMakeFiles/ds_transport.dir/dstampede/transport/udp.cpp.o"
  "CMakeFiles/ds_transport.dir/dstampede/transport/udp.cpp.o.d"
  "libds_transport.a"
  "libds_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
