file(REMOVE_RECURSE
  "libds_clf.a"
)
