file(REMOVE_RECURSE
  "CMakeFiles/ds_clf.dir/dstampede/clf/endpoint.cpp.o"
  "CMakeFiles/ds_clf.dir/dstampede/clf/endpoint.cpp.o.d"
  "CMakeFiles/ds_clf.dir/dstampede/clf/fault_injector.cpp.o"
  "CMakeFiles/ds_clf.dir/dstampede/clf/fault_injector.cpp.o.d"
  "CMakeFiles/ds_clf.dir/dstampede/clf/shm_ring.cpp.o"
  "CMakeFiles/ds_clf.dir/dstampede/clf/shm_ring.cpp.o.d"
  "libds_clf.a"
  "libds_clf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_clf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
