
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dstampede/clf/endpoint.cpp" "src/CMakeFiles/ds_clf.dir/dstampede/clf/endpoint.cpp.o" "gcc" "src/CMakeFiles/ds_clf.dir/dstampede/clf/endpoint.cpp.o.d"
  "/root/repo/src/dstampede/clf/fault_injector.cpp" "src/CMakeFiles/ds_clf.dir/dstampede/clf/fault_injector.cpp.o" "gcc" "src/CMakeFiles/ds_clf.dir/dstampede/clf/fault_injector.cpp.o.d"
  "/root/repo/src/dstampede/clf/shm_ring.cpp" "src/CMakeFiles/ds_clf.dir/dstampede/clf/shm_ring.cpp.o" "gcc" "src/CMakeFiles/ds_clf.dir/dstampede/clf/shm_ring.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
