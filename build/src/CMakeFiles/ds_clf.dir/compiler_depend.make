# Empty compiler generated dependencies file for ds_clf.
# This may be replaced when dependencies are built.
