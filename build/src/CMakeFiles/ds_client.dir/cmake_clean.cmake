file(REMOVE_RECURSE
  "CMakeFiles/ds_client.dir/dstampede/client/client.cpp.o"
  "CMakeFiles/ds_client.dir/dstampede/client/client.cpp.o.d"
  "CMakeFiles/ds_client.dir/dstampede/client/java_client.cpp.o"
  "CMakeFiles/ds_client.dir/dstampede/client/java_client.cpp.o.d"
  "CMakeFiles/ds_client.dir/dstampede/client/listener.cpp.o"
  "CMakeFiles/ds_client.dir/dstampede/client/listener.cpp.o.d"
  "CMakeFiles/ds_client.dir/dstampede/client/protocol.cpp.o"
  "CMakeFiles/ds_client.dir/dstampede/client/protocol.cpp.o.d"
  "CMakeFiles/ds_client.dir/dstampede/client/surrogate.cpp.o"
  "CMakeFiles/ds_client.dir/dstampede/client/surrogate.cpp.o.d"
  "libds_client.a"
  "libds_client.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
