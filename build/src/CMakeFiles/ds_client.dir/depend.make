# Empty dependencies file for ds_client.
# This may be replaced when dependencies are built.
