file(REMOVE_RECURSE
  "libds_client.a"
)
