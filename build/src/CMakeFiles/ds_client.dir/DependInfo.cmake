
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dstampede/client/client.cpp" "src/CMakeFiles/ds_client.dir/dstampede/client/client.cpp.o" "gcc" "src/CMakeFiles/ds_client.dir/dstampede/client/client.cpp.o.d"
  "/root/repo/src/dstampede/client/java_client.cpp" "src/CMakeFiles/ds_client.dir/dstampede/client/java_client.cpp.o" "gcc" "src/CMakeFiles/ds_client.dir/dstampede/client/java_client.cpp.o.d"
  "/root/repo/src/dstampede/client/listener.cpp" "src/CMakeFiles/ds_client.dir/dstampede/client/listener.cpp.o" "gcc" "src/CMakeFiles/ds_client.dir/dstampede/client/listener.cpp.o.d"
  "/root/repo/src/dstampede/client/protocol.cpp" "src/CMakeFiles/ds_client.dir/dstampede/client/protocol.cpp.o" "gcc" "src/CMakeFiles/ds_client.dir/dstampede/client/protocol.cpp.o.d"
  "/root/repo/src/dstampede/client/surrogate.cpp" "src/CMakeFiles/ds_client.dir/dstampede/client/surrogate.cpp.o" "gcc" "src/CMakeFiles/ds_client.dir/dstampede/client/surrogate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_clf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
