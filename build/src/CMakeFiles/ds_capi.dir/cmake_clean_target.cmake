file(REMOVE_RECURSE
  "libds_capi.a"
)
