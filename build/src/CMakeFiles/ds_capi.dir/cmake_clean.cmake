file(REMOVE_RECURSE
  "CMakeFiles/ds_capi.dir/dstampede/capi/capi.cpp.o"
  "CMakeFiles/ds_capi.dir/dstampede/capi/capi.cpp.o.d"
  "libds_capi.a"
  "libds_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
