# Empty dependencies file for ds_capi.
# This may be replaced when dependencies are built.
