
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dstampede/core/address_space.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/address_space.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/address_space.cpp.o.d"
  "/root/repo/src/dstampede/core/channel.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/channel.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/channel.cpp.o.d"
  "/root/repo/src/dstampede/core/federation.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/federation.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/federation.cpp.o.d"
  "/root/repo/src/dstampede/core/gc.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/gc.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/gc.cpp.o.d"
  "/root/repo/src/dstampede/core/item.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/item.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/item.cpp.o.d"
  "/root/repo/src/dstampede/core/name_server.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/name_server.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/name_server.cpp.o.d"
  "/root/repo/src/dstampede/core/queue.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/queue.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/queue.cpp.o.d"
  "/root/repo/src/dstampede/core/rt_sync.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/rt_sync.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/rt_sync.cpp.o.d"
  "/root/repo/src/dstampede/core/runtime.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/runtime.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/runtime.cpp.o.d"
  "/root/repo/src/dstampede/core/wire.cpp" "src/CMakeFiles/ds_core.dir/dstampede/core/wire.cpp.o" "gcc" "src/CMakeFiles/ds_core.dir/dstampede/core/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ds_clf.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_marshal.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
