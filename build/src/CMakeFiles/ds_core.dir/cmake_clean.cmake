file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/dstampede/core/address_space.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/address_space.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/channel.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/channel.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/federation.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/federation.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/gc.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/gc.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/item.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/item.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/name_server.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/name_server.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/queue.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/queue.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/rt_sync.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/rt_sync.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/runtime.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/runtime.cpp.o.d"
  "CMakeFiles/ds_core.dir/dstampede/core/wire.cpp.o"
  "CMakeFiles/ds_core.dir/dstampede/core/wire.cpp.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
