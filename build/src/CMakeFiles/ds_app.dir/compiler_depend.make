# Empty compiler generated dependencies file for ds_app.
# This may be replaced when dependencies are built.
