file(REMOVE_RECURSE
  "libds_app.a"
)
