file(REMOVE_RECURSE
  "CMakeFiles/ds_app.dir/dstampede/app/audio.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/audio.cpp.o.d"
  "CMakeFiles/ds_app.dir/dstampede/app/correlator.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/correlator.cpp.o.d"
  "CMakeFiles/ds_app.dir/dstampede/app/image.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/image.cpp.o.d"
  "CMakeFiles/ds_app.dir/dstampede/app/socket_videoconf.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/socket_videoconf.cpp.o.d"
  "CMakeFiles/ds_app.dir/dstampede/app/tracker.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/tracker.cpp.o.d"
  "CMakeFiles/ds_app.dir/dstampede/app/videoconf.cpp.o"
  "CMakeFiles/ds_app.dir/dstampede/app/videoconf.cpp.o.d"
  "libds_app.a"
  "libds_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
