file(REMOVE_RECURSE
  "CMakeFiles/ds_marshal.dir/dstampede/marshal/java_style.cpp.o"
  "CMakeFiles/ds_marshal.dir/dstampede/marshal/java_style.cpp.o.d"
  "CMakeFiles/ds_marshal.dir/dstampede/marshal/xdr.cpp.o"
  "CMakeFiles/ds_marshal.dir/dstampede/marshal/xdr.cpp.o.d"
  "libds_marshal.a"
  "libds_marshal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_marshal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
