file(REMOVE_RECURSE
  "libds_marshal.a"
)
