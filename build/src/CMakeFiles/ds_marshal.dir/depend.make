# Empty dependencies file for ds_marshal.
# This may be replaced when dependencies are built.
