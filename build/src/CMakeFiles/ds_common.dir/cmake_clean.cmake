file(REMOVE_RECURSE
  "CMakeFiles/ds_common.dir/dstampede/common/bytes.cpp.o"
  "CMakeFiles/ds_common.dir/dstampede/common/bytes.cpp.o.d"
  "CMakeFiles/ds_common.dir/dstampede/common/logging.cpp.o"
  "CMakeFiles/ds_common.dir/dstampede/common/logging.cpp.o.d"
  "CMakeFiles/ds_common.dir/dstampede/common/stats.cpp.o"
  "CMakeFiles/ds_common.dir/dstampede/common/stats.cpp.o.d"
  "CMakeFiles/ds_common.dir/dstampede/common/status.cpp.o"
  "CMakeFiles/ds_common.dir/dstampede/common/status.cpp.o.d"
  "CMakeFiles/ds_common.dir/dstampede/common/thread_pool.cpp.o"
  "CMakeFiles/ds_common.dir/dstampede/common/thread_pool.cpp.o.d"
  "libds_common.a"
  "libds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
