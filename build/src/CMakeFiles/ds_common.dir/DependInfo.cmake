
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dstampede/common/bytes.cpp" "src/CMakeFiles/ds_common.dir/dstampede/common/bytes.cpp.o" "gcc" "src/CMakeFiles/ds_common.dir/dstampede/common/bytes.cpp.o.d"
  "/root/repo/src/dstampede/common/logging.cpp" "src/CMakeFiles/ds_common.dir/dstampede/common/logging.cpp.o" "gcc" "src/CMakeFiles/ds_common.dir/dstampede/common/logging.cpp.o.d"
  "/root/repo/src/dstampede/common/stats.cpp" "src/CMakeFiles/ds_common.dir/dstampede/common/stats.cpp.o" "gcc" "src/CMakeFiles/ds_common.dir/dstampede/common/stats.cpp.o.d"
  "/root/repo/src/dstampede/common/status.cpp" "src/CMakeFiles/ds_common.dir/dstampede/common/status.cpp.o" "gcc" "src/CMakeFiles/ds_common.dir/dstampede/common/status.cpp.o.d"
  "/root/repo/src/dstampede/common/thread_pool.cpp" "src/CMakeFiles/ds_common.dir/dstampede/common/thread_pool.cpp.o" "gcc" "src/CMakeFiles/ds_common.dir/dstampede/common/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
