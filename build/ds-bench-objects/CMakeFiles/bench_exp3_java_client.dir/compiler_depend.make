# Empty compiler generated dependencies file for bench_exp3_java_client.
# This may be replaced when dependencies are built.
