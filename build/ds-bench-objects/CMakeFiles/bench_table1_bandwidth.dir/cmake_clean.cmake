file(REMOVE_RECURSE
  "../bench/bench_table1_bandwidth"
  "../bench/bench_table1_bandwidth.pdb"
  "CMakeFiles/bench_table1_bandwidth.dir/bench_table1_bandwidth.cpp.o"
  "CMakeFiles/bench_table1_bandwidth.dir/bench_table1_bandwidth.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
