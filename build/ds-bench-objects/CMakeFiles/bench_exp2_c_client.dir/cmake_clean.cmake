file(REMOVE_RECURSE
  "../bench/bench_exp2_c_client"
  "../bench/bench_exp2_c_client.pdb"
  "CMakeFiles/bench_exp2_c_client.dir/bench_exp2_c_client.cpp.o"
  "CMakeFiles/bench_exp2_c_client.dir/bench_exp2_c_client.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp2_c_client.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
