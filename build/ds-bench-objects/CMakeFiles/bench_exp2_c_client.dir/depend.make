# Empty dependencies file for bench_exp2_c_client.
# This may be replaced when dependencies are built.
