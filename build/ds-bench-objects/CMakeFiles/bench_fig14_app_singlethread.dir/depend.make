# Empty dependencies file for bench_fig14_app_singlethread.
# This may be replaced when dependencies are built.
