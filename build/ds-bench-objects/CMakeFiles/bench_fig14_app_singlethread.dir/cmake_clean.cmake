file(REMOVE_RECURSE
  "../bench/bench_fig14_app_singlethread"
  "../bench/bench_fig14_app_singlethread.pdb"
  "CMakeFiles/bench_fig14_app_singlethread.dir/bench_fig14_app_singlethread.cpp.o"
  "CMakeFiles/bench_fig14_app_singlethread.dir/bench_fig14_app_singlethread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_app_singlethread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
