# Empty compiler generated dependencies file for bench_exp1_intra_cluster.
# This may be replaced when dependencies are built.
