file(REMOVE_RECURSE
  "../bench/bench_exp1_intra_cluster"
  "../bench/bench_exp1_intra_cluster.pdb"
  "CMakeFiles/bench_exp1_intra_cluster.dir/bench_exp1_intra_cluster.cpp.o"
  "CMakeFiles/bench_exp1_intra_cluster.dir/bench_exp1_intra_cluster.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp1_intra_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
