# Empty compiler generated dependencies file for bench_fig15_app_multithread.
# This may be replaced when dependencies are built.
