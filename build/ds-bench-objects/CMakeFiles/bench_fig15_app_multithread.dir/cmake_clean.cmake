file(REMOVE_RECURSE
  "../bench/bench_fig15_app_multithread"
  "../bench/bench_fig15_app_multithread.pdb"
  "CMakeFiles/bench_fig15_app_multithread.dir/bench_fig15_app_multithread.cpp.o"
  "CMakeFiles/bench_fig15_app_multithread.dir/bench_fig15_app_multithread.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_app_multithread.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
