file(REMOVE_RECURSE
  "CMakeFiles/stereo_vision.dir/stereo_vision.cpp.o"
  "CMakeFiles/stereo_vision.dir/stereo_vision.cpp.o.d"
  "stereo_vision"
  "stereo_vision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stereo_vision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
