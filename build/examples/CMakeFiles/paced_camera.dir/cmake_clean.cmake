file(REMOVE_RECURSE
  "CMakeFiles/paced_camera.dir/paced_camera.cpp.o"
  "CMakeFiles/paced_camera.dir/paced_camera.cpp.o.d"
  "paced_camera"
  "paced_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paced_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
