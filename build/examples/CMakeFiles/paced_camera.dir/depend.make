# Empty dependencies file for paced_camera.
# This may be replaced when dependencies are built.
