# Empty compiler generated dependencies file for federated_clusters.
# This may be replaced when dependencies are built.
