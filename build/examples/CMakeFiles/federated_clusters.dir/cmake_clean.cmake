file(REMOVE_RECURSE
  "CMakeFiles/federated_clusters.dir/federated_clusters.cpp.o"
  "CMakeFiles/federated_clusters.dir/federated_clusters.cpp.o.d"
  "federated_clusters"
  "federated_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/federated_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
