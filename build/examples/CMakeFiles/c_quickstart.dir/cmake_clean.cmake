file(REMOVE_RECURSE
  "CMakeFiles/c_quickstart.dir/c_quickstart.c.o"
  "CMakeFiles/c_quickstart.dir/c_quickstart.c.o.d"
  "c_quickstart"
  "c_quickstart.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang C)
  include(CMakeFiles/c_quickstart.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
