file(REMOVE_RECURSE
  "CMakeFiles/videoconf_demo.dir/videoconf_demo.cpp.o"
  "CMakeFiles/videoconf_demo.dir/videoconf_demo.cpp.o.d"
  "videoconf_demo"
  "videoconf_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/videoconf_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
