# Empty compiler generated dependencies file for videoconf_demo.
# This may be replaced when dependencies are built.
