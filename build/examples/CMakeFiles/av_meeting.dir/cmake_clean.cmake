file(REMOVE_RECURSE
  "CMakeFiles/av_meeting.dir/av_meeting.cpp.o"
  "CMakeFiles/av_meeting.dir/av_meeting.cpp.o.d"
  "av_meeting"
  "av_meeting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_meeting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
