# Empty compiler generated dependencies file for av_meeting.
# This may be replaced when dependencies are built.
