# Empty dependencies file for clf_test.
# This may be replaced when dependencies are built.
