# Empty compiler generated dependencies file for name_server_test.
# This may be replaced when dependencies are built.
