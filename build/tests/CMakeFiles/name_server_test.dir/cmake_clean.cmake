file(REMOVE_RECURSE
  "CMakeFiles/name_server_test.dir/name_server_test.cpp.o"
  "CMakeFiles/name_server_test.dir/name_server_test.cpp.o.d"
  "name_server_test"
  "name_server_test.pdb"
  "name_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
