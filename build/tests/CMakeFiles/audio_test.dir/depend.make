# Empty dependencies file for audio_test.
# This may be replaced when dependencies are built.
