file(REMOVE_RECURSE
  "CMakeFiles/rt_sync_test.dir/rt_sync_test.cpp.o"
  "CMakeFiles/rt_sync_test.dir/rt_sync_test.cpp.o.d"
  "rt_sync_test"
  "rt_sync_test.pdb"
  "rt_sync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
