# Empty compiler generated dependencies file for marshal_test.
# This may be replaced when dependencies are built.
