file(REMOVE_RECURSE
  "CMakeFiles/correlator_test.dir/correlator_test.cpp.o"
  "CMakeFiles/correlator_test.dir/correlator_test.cpp.o.d"
  "correlator_test"
  "correlator_test.pdb"
  "correlator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/correlator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
