# Empty compiler generated dependencies file for correlator_test.
# This may be replaced when dependencies are built.
