file(REMOVE_RECURSE
  "CMakeFiles/gc_service_test.dir/gc_service_test.cpp.o"
  "CMakeFiles/gc_service_test.dir/gc_service_test.cpp.o.d"
  "gc_service_test"
  "gc_service_test.pdb"
  "gc_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
