# Empty dependencies file for gc_service_test.
# This may be replaced when dependencies are built.
