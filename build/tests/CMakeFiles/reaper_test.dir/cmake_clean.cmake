file(REMOVE_RECURSE
  "CMakeFiles/reaper_test.dir/reaper_test.cpp.o"
  "CMakeFiles/reaper_test.dir/reaper_test.cpp.o.d"
  "reaper_test"
  "reaper_test.pdb"
  "reaper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reaper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
