# Empty dependencies file for reaper_test.
# This may be replaced when dependencies are built.
