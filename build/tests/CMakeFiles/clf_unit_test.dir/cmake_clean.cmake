file(REMOVE_RECURSE
  "CMakeFiles/clf_unit_test.dir/clf_unit_test.cpp.o"
  "CMakeFiles/clf_unit_test.dir/clf_unit_test.cpp.o.d"
  "clf_unit_test"
  "clf_unit_test.pdb"
  "clf_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clf_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
