# Empty compiler generated dependencies file for clf_unit_test.
# This may be replaced when dependencies are built.
