# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/marshal_test[1]_include.cmake")
include("/root/repo/build/tests/transport_test[1]_include.cmake")
include("/root/repo/build/tests/clf_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/gc_service_test[1]_include.cmake")
include("/root/repo/build/tests/name_server_test[1]_include.cmake")
include("/root/repo/build/tests/rt_sync_test[1]_include.cmake")
include("/root/repo/build/tests/address_space_test[1]_include.cmake")
include("/root/repo/build/tests/client_test[1]_include.cmake")
include("/root/repo/build/tests/app_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/filter_test[1]_include.cmake")
include("/root/repo/build/tests/federation_test[1]_include.cmake")
include("/root/repo/build/tests/reaper_test[1]_include.cmake")
include("/root/repo/build/tests/correlator_test[1]_include.cmake")
include("/root/repo/build/tests/typed_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
include("/root/repo/build/tests/audio_test[1]_include.cmake")
include("/root/repo/build/tests/clf_unit_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/app_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/misc_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
