#!/usr/bin/env bash
# CI observability smoke: start a 3-space mini cluster, point dsctl at
# it through the name server's sys/metrics/ discovery, and fail when
# any space's snapshot is missing, empty or unparsable.
#
# Usage: scripts/metrics_smoke.sh [build_dir]
set -u

BUILD="${1:-build}"

out="$(mktemp)"
trap 'kill "${pid:-0}" 2>/dev/null; rm -f "$out"' EXIT

"$BUILD/tools/mini_cluster" 60 >"$out" 2>&1 &
pid=$!

port=""
for _ in $(seq 1 100); do
  port="$(sed -n 's/^DSCTL_PORT=\([0-9]*\)$/\1/p' "$out")"
  [ -n "$port" ] && break
  if ! kill -0 "$pid" 2>/dev/null; then
    echo "metrics_smoke: mini_cluster exited early" >&2
    cat "$out" >&2
    exit 1
  fi
  sleep 0.1
done
if [ -z "$port" ]; then
  echo "metrics_smoke: mini_cluster never printed DSCTL_PORT" >&2
  cat "$out" >&2
  exit 1
fi

"$BUILD/tools/dsctl" "127.0.0.1:$port" --check
rc=$?
if [ "$rc" -ne 0 ]; then
  echo "metrics_smoke: dsctl --check failed (rc=$rc)" >&2
  exit "$rc"
fi
echo "metrics_smoke: OK"
