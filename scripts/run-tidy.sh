#!/usr/bin/env bash
# Static-analysis gate: project-specific dslint checks plus clang-tidy
# over the library sources. Usage:
#
#   scripts/run-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# Stages (see docs/STATIC_ANALYSIS.md):
#   1. hierarchy drift — docs/lock_hierarchy.txt must match the edge
#      table in docs/CONCURRENCY.md;
#   2. dslint gate — the standalone checker (build-dir/tools/dslint/
#      dslint, no clang needed) over src/ and tools/;
#   3. clang-tidy over src/ using the CMake compilation database,
#      loading the dslint plugin when the build produced one.
#
# The build dir must have been configured with CMake (compile_commands
# .json is exported by default; see CMAKE_EXPORT_COMPILE_COMMANDS in
# the top-level CMakeLists.txt). Exits non-zero on any finding in a
# WarningsAsErrors category (see .clang-tidy) or any dslint finding.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

# --- stage 1+2: dslint (hierarchy drift, then the checks) -------------
dslint="$build_dir/tools/dslint/dslint"
if [ ! -x "$dslint" ]; then
  echo "error: $dslint not found; build the tree first:" >&2
  echo "  cmake -B $build_dir -S $repo_root && cmake --build $build_dir -j" >&2
  exit 2
fi

echo "== dslint: hierarchy drift check"
"$dslint" --verify-hierarchy "$repo_root/docs/lock_hierarchy.txt" \
  "$repo_root/docs/CONCURRENCY.md"

echo "== dslint: src/ and tools/"
mapfile -t ds_sources < <(
  find "$repo_root/src" "$repo_root/tools" \
    \( -name '*.cpp' -o -name '*.hpp' \) -not -path '*/tools/dslint/*' | sort)
"$dslint" --root "$repo_root" \
  --hierarchy "$repo_root/docs/lock_hierarchy.txt" "${ds_sources[@]}"

# --- stage 3: clang-tidy ----------------------------------------------
if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY to override)." >&2
  exit 2
fi

# When the build produced the plugin flavor, load it so the
# dstampede-* checks run inside clang-tidy too (the .clang-tidy Checks
# glob already enables them; without the plugin the glob matches
# nothing and is harmless).
tidy_args=()
plugin="$build_dir/tools/dslint/libdslint.so"
if [ -f "$plugin" ]; then
  echo "== clang-tidy: loading dslint plugin ($plugin)"
  tidy_args+=(-load "$plugin")
fi

# Library sources only: tests and benches lean on gtest/benchmark
# macros that trip bugprone checks with no fix available to us.
mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)

status=0
for source in "${sources[@]}"; do
  echo "== ${source#"$repo_root"/}"
  "$tidy" -p "$build_dir" --quiet "${tidy_args[@]}" "$@" "$source" || status=1
done
if [ "$status" -eq 0 ]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: findings above (WarningsAsErrors categories fail)" >&2
fi
exit "$status"
