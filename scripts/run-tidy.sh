#!/usr/bin/env bash
# Runs clang-tidy over the library sources using the CMake compilation
# database. Usage:
#
#   scripts/run-tidy.sh [build-dir] [-- extra clang-tidy args]
#
# The build dir must have been configured with CMake (compile_commands
# .json is exported by default; see CMAKE_EXPORT_COMPILE_COMMANDS in
# the top-level CMakeLists.txt). Exits non-zero on any finding in a
# WarningsAsErrors category (see .clang-tidy).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
shift || true
[ "${1:-}" = "--" ] && shift

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "error: $build_dir/compile_commands.json not found." >&2
  echo "Configure first: cmake -B $build_dir -S $repo_root" >&2
  exit 2
fi

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
  echo "error: $tidy not found (set CLANG_TIDY to override)." >&2
  exit 2
fi

# Library sources only: tests and benches lean on gtest/benchmark
# macros that trip bugprone checks with no fix available to us.
mapfile -t sources < <(find "$repo_root/src" -name '*.cpp' | sort)

status=0
for source in "${sources[@]}"; do
  echo "== ${source#"$repo_root"/}"
  "$tidy" -p "$build_dir" --quiet "$@" "$source" || status=1
done
if [ "$status" -eq 0 ]; then
  echo "clang-tidy: clean"
else
  echo "clang-tidy: findings above (WarningsAsErrors categories fail)" >&2
fi
exit "$status"
