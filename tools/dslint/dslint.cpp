// dslint driver. Usage:
//
//   dslint [--root DIR] [--hierarchy FILE] [--as-path RELPATH]
//          [--checks c1,c2] [--list-edges] file.cpp [file.hpp ...]
//   dslint --verify-hierarchy docs/lock_hierarchy.txt docs/CONCURRENCY.md
//
// Findings go to stdout in clang-tidy format
// ("path:line:col: warning: msg [dstampede-check]"); exit status is 0
// when clean, 1 on findings or drift, 2 on usage/I-O errors.
//
// The engine resolves a MutexLock's mutex variable against every file
// it has seen, so pass the whole file set in one invocation (the way
// scripts/run-tidy.sh does) rather than one file at a time — a lock
// taken in foo.cpp on a mutex declared in foo.hpp only resolves when
// both were scanned.
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "engine.hpp"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dslint [--root DIR] [--hierarchy FILE] [--as-path RELPATH]\n"
      "              [--checks c1,c2] [--list-edges] files...\n"
      "       dslint --verify-hierarchy HIERARCHY_FILE CONCURRENCY_MD\n");
  return 2;
}

int VerifyHierarchy(const std::string& hier_path, const std::string& md_path) {
  dslint::Hierarchy file_h, doc_h;
  std::string error;
  if (!file_h.LoadFromFile(hier_path, &error)) {
    std::fprintf(stderr, "dslint: %s\n", error.c_str());
    return 2;
  }
  if (!doc_h.LoadFromMarkdown(md_path, &error)) {
    std::fprintf(stderr, "dslint: %s\n", error.c_str());
    return 2;
  }
  std::vector<std::string> drift = dslint::DiffHierarchy(file_h, doc_h);
  for (const std::string& d : drift)
    std::printf("hierarchy drift: %s\n", d.c_str());
  if (drift.empty()) {
    std::fprintf(stderr,
                 "dslint: %s and %s agree (%zu edges)\n", hier_path.c_str(),
                 md_path.c_str(), file_h.edges().size());
    return 0;
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  dslint::Options options;
  std::vector<std::string> files;
  std::string hierarchy_path;
  bool list_edges = false;

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--verify-hierarchy") {
      const char* h = next();
      const char* m = next();
      if (h == nullptr || m == nullptr) return Usage();
      return VerifyHierarchy(h, m);
    } else if (arg == "--root") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.root = v;
    } else if (arg == "--hierarchy") {
      const char* v = next();
      if (v == nullptr) return Usage();
      hierarchy_path = v;
    } else if (arg == "--as-path") {
      const char* v = next();
      if (v == nullptr) return Usage();
      options.as_path = v;
    } else if (arg == "--checks") {
      const char* v = next();
      if (v == nullptr) return Usage();
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ','))
        if (!item.empty()) options.enabled_checks.insert(item);
    } else if (arg == "--list-edges") {
      list_edges = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "dslint: unknown flag %s\n", arg.c_str());
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  if (!hierarchy_path.empty()) {
    std::string error;
    if (!options.hierarchy.LoadFromFile(hierarchy_path, &error)) {
      std::fprintf(stderr, "dslint: %s\n", error.c_str());
      return 2;
    }
  }

  dslint::Engine engine(options);
  // Two passes: learn every mutex declaration first so cross-file
  // variable -> lock-class resolution works regardless of file order.
  for (const std::string& f : files) engine.ScanDeclarations(f);
  std::vector<dslint::Finding> findings;
  for (const std::string& f : files) engine.Analyze(f, &findings);

  for (const dslint::Finding& finding : findings)
    std::printf("%s\n", finding.Render().c_str());

  if (list_edges) {
    for (const dslint::LockEdge& e : engine.observed_edges())
      std::fprintf(stderr, "edge: %s -> %s\n", e.holder.c_str(),
                   e.acquired.c_str());
  }
  std::fprintf(stderr, "dslint: %zu file(s), %zu finding(s)\n", files.size(),
               findings.size());
  return findings.empty() ? 0 : 1;
}
