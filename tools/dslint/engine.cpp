#include "engine.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <fstream>
#include <sstream>

namespace dslint {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer. C++-shaped, not a full lexer: identifiers, numbers,
// strings, and punctuation, with comments captured per line for NOLINT
// processing and preprocessor lines skipped entirely.
// ---------------------------------------------------------------------------

enum class Tok { kIdent, kNum, kStr, kPunct };

struct Token {
  Tok kind;
  std::string text;
  int line;
  int col;
};

struct Suppression {
  std::set<std::string> checks;  // empty + all -> every check
  bool all = false;
  bool justified = false;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<int, Suppression> suppressions;  // by line
};

bool IdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool IdentChar(char c) { return IdentStart(c) || (c >= '0' && c <= '9'); }

// Parses a NOLINT / NOLINTNEXTLINE marker out of one comment and files
// it under the right line. Justification = any non-space text after
// the check list (conventionally ": why").
void RecordNolint(const std::string& comment, int line,
                  std::map<int, Suppression>* out) {
  std::size_t pos = comment.find("NOLINT");
  if (pos == std::string::npos) return;
  std::size_t after = pos + 6;  // past "NOLINT"
  int target = line;
  if (comment.compare(pos, 14, "NOLINTNEXTLINE") == 0) {
    after = pos + 14;
    target = line + 1;
  }
  Suppression s;
  if (after < comment.size() && comment[after] == '(') {
    std::size_t close = comment.find(')', after);
    if (close == std::string::npos) return;  // malformed; ignore
    std::string list = comment.substr(after + 1, close - after - 1);
    std::stringstream ss(list);
    std::string item;
    while (std::getline(ss, item, ',')) {
      item.erase(0, item.find_first_not_of(" \t"));
      item.erase(item.find_last_not_of(" \t") + 1);
      if (item == "*")
        s.all = true;
      else if (!item.empty())
        s.checks.insert(item);
    }
    after = close + 1;
  } else {
    s.all = true;  // bare NOLINT suppresses everything
  }
  s.justified =
      comment.find_first_not_of(" \t:-—", after) != std::string::npos;
  Suppression& slot = (*out)[target];
  slot.all |= s.all;
  slot.checks.insert(s.checks.begin(), s.checks.end());
  // One justified marker justifies the line; separate unjustified
  // markers on the same line stay callable-out individually only in
  // spirit — line granularity is enough here.
  slot.justified |= s.justified;
}

Lexed Lex(const std::string& src) {
  Lexed out;
  int line = 1, col = 1;
  std::size_t i = 0;
  const std::size_t n = src.size();
  auto advance = [&](char c) {
    if (c == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
  };
  bool at_line_start = true;
  while (i < n) {
    char c = src[i];
    // Preprocessor directive: swallow the logical line (with \-splices).
    if (at_line_start && c == '#') {
      while (i < n) {
        if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
          advance(src[i]);
          ++i;
          advance(src[i]);
          ++i;
          continue;
        }
        if (src[i] == '\n') break;
        advance(src[i]);
        ++i;
      }
      continue;
    }
    if (c == '\n') {
      advance(c);
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      advance(c);
      ++i;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      int cline = line;
      std::string text;
      while (i < n && src[i] != '\n') {
        text.push_back(src[i]);
        advance(src[i]);
        ++i;
      }
      RecordNolint(text, cline, &out.suppressions);
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      int cline = line;
      std::string text;
      advance(src[i]);
      ++i;
      advance(src[i]);
      ++i;
      while (i < n && !(src[i] == '*' && i + 1 < n && src[i + 1] == '/')) {
        text.push_back(src[i]);
        advance(src[i]);
        ++i;
      }
      if (i < n) {
        advance(src[i]);
        ++i;
        advance(src[i]);
        ++i;
      }
      RecordNolint(text, cline, &out.suppressions);
      continue;
    }
    // Raw string literal R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
      std::size_t paren = src.find('(', i + 2);
      if (paren != std::string::npos) {
        std::string delim = src.substr(i + 2, paren - (i + 2));
        std::string closer = ")" + delim + "\"";
        std::size_t end = src.find(closer, paren + 1);
        if (end == std::string::npos) end = n;
        int sline = line, scol = col;
        std::string body = src.substr(paren + 1, end - paren - 1);
        while (i < n && i < end + closer.size()) {
          advance(src[i]);
          ++i;
        }
        out.tokens.push_back({Tok::kStr, body, sline, scol});
        continue;
      }
    }
    // String / char literal.
    if (c == '"' || c == '\'') {
      char quote = c;
      int sline = line, scol = col;
      std::string body;
      advance(src[i]);
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          // Consume the escape and the escaped character as content,
          // so \" does not terminate the literal.
          body.push_back(src[i]);
          advance(src[i]);
          ++i;
        }
        body.push_back(src[i]);
        advance(src[i]);
        ++i;
      }
      if (i < n) {
        advance(src[i]);
        ++i;
      }
      out.tokens.push_back({Tok::kStr, body, sline, scol});
      continue;
    }
    if (IdentStart(c)) {
      int sline = line, scol = col;
      std::string text;
      while (i < n && IdentChar(src[i])) {
        text.push_back(src[i]);
        advance(src[i]);
        ++i;
      }
      out.tokens.push_back({Tok::kIdent, text, sline, scol});
      continue;
    }
    if (c >= '0' && c <= '9') {
      int sline = line, scol = col;
      std::string text;
      while (i < n && (IdentChar(src[i]) || src[i] == '.' || src[i] == '\'')) {
        text.push_back(src[i]);
        advance(src[i]);
        ++i;
      }
      out.tokens.push_back({Tok::kNum, text, sline, scol});
      continue;
    }
    // Punctuation; fuse the two-char tokens the checks care about.
    int sline = line, scol = col;
    std::string text(1, c);
    if (i + 1 < n) {
      char d = src[i + 1];
      if ((c == ':' && d == ':') || (c == '-' && d == '>') ||
          (c == '&' && d == '&') || (c == '|' && d == '|')) {
        text.push_back(d);
      }
    }
    for (char t : text) {
      (void)t;
      advance(src[i]);
      ++i;
    }
    out.tokens.push_back({Tok::kPunct, text, sline, scol});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Small helpers over the token stream.
// ---------------------------------------------------------------------------

bool Is(const std::vector<Token>& t, std::size_t i, const char* text) {
  return i < t.size() && t[i].text == text;
}
bool IsIdent(const std::vector<Token>& t, std::size_t i) {
  return i < t.size() && t[i].kind == Tok::kIdent;
}

// Index of the matching ')' for the '(' at `open` (returns t.size() on
// imbalance).
std::size_t MatchParen(const std::vector<Token>& t, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < t.size(); ++i) {
    if (t[i].text == "(") ++depth;
    if (t[i].text == ")" && --depth == 0) return i;
  }
  return t.size();
}

bool StartsWith(const std::string& s, const char* prefix) {
  return s.rfind(prefix, 0) == 0;
}

const char* kRawClock = "dstampede-raw-clock";
const char* kBlocking = "dstampede-blocking-under-lock";
const char* kCallback = "dstampede-callback-under-lock";
const char* kRawSync = "dstampede-raw-sync-primitive";
const char* kLockOrder = "dstampede-lock-order";
const char* kNolintJustify = "dstampede-nolint-justification";

const std::set<std::string> kBlockingMembers = {
    "Call", "Send", "Recv", "AwaitUntil", "TakeResult", "Get", "Put"};
const std::set<std::string> kCallbackMembers = {"Finish", "Complete"};
const std::set<std::string> kRawSyncTypes = {
    "mutex",          "timed_mutex",
    "recursive_mutex", "recursive_timed_mutex",
    "shared_mutex",   "shared_timed_mutex",
    "condition_variable", "condition_variable_any",
    "thread",         "jthread",
    "lock_guard",     "unique_lock",
    "scoped_lock",    "shared_lock"};
const std::set<std::string> kRawClockClasses = {
    "steady_clock", "system_clock", "high_resolution_clock"};

// Tokens that can directly precede a bare (unqualified, receiver-less)
// call expression, as opposed to a declaration or definition.
const std::set<std::string> kStmtStarters = {";", "{",  "}", "(",  ",",
                                             "=", "&&", "||", "!", "return"};

}  // namespace

std::string Finding::Render() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), ":%d:%d: ", line, col);
  return path + buf + "warning: " + message + " [" + check + "]";
}

// ---------------------------------------------------------------------------
// Hierarchy.
// ---------------------------------------------------------------------------

void Hierarchy::AddEdge(const std::string& from, const std::string& to) {
  edges_.insert({from, to});
  adj_[from].insert(to);
  loaded_ = true;
}

bool Hierarchy::HasPath(const std::string& from, const std::string& to) const {
  std::set<std::string> seen{from};
  std::deque<std::string> queue{from};
  while (!queue.empty()) {
    std::string cur = queue.front();
    queue.pop_front();
    auto it = adj_.find(cur);
    if (it == adj_.end()) continue;
    for (const std::string& next : it->second) {
      if (next == to) return true;
      if (seen.insert(next).second) queue.push_back(next);
    }
  }
  return false;
}

bool Hierarchy::LoadFromFile(const std::string& path, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text)) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  std::stringstream ss(text);
  std::string line;
  int lineno = 0;
  while (std::getline(ss, line)) {
    ++lineno;
    std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t\r") + 1);
    if (line.empty()) continue;
    std::size_t arrow = line.find("->");
    if (arrow == std::string::npos) {
      if (error) {
        *error = path + ":" + std::to_string(lineno) +
                 ": expected \"holder -> acquired\", got \"" + line + "\"";
      }
      return false;
    }
    std::string from = line.substr(0, arrow);
    std::string to = line.substr(arrow + 2);
    from.erase(from.find_last_not_of(" \t") + 1);
    to.erase(0, to.find_first_not_of(" \t"));
    if (from.empty() || to.empty()) {
      if (error) {
        *error = path + ":" + std::to_string(lineno) + ": empty lock name";
      }
      return false;
    }
    AddEdge(from, to);
  }
  loaded_ = true;  // an empty file is a valid (edge-free) hierarchy
  return true;
}

bool Hierarchy::LoadFromMarkdown(const std::string& path, std::string* error) {
  std::string text;
  if (!ReadFile(path, &text)) {
    if (error) *error = "cannot read " + path;
    return false;
  }
  const std::string begin = "<!-- lock-hierarchy:begin -->";
  const std::string end = "<!-- lock-hierarchy:end -->";
  std::size_t b = text.find(begin);
  std::size_t e = text.find(end);
  if (b == std::string::npos || e == std::string::npos || e < b) {
    if (error) *error = path + ": lock-hierarchy markers not found";
    return false;
  }
  std::stringstream ss(text.substr(b + begin.size(), e - b - begin.size()));
  std::string line;
  while (std::getline(ss, line)) {
    line.erase(0, line.find_first_not_of(" \t"));
    line.erase(line.find_last_not_of(" \t\r") + 1);
    if (line.empty() || line[0] != '|') continue;
    // Split "| a | b |" into cells.
    std::vector<std::string> cells;
    std::size_t pos = 1;
    while (pos < line.size()) {
      std::size_t bar = line.find('|', pos);
      if (bar == std::string::npos) break;
      std::string cell = line.substr(pos, bar - pos);
      cell.erase(0, cell.find_first_not_of(" \t"));
      cell.erase(cell.find_last_not_of(" \t") + 1);
      cells.push_back(cell);
      pos = bar + 1;
    }
    if (cells.size() < 2) continue;
    // Skip the header and the |---|---| separator row.
    if (cells[0].empty() || cells[0].find_first_not_of("-: ") ==
        std::string::npos)
      continue;
    if (cells[0] == "held" || cells[0] == "holder") continue;
    AddEdge(cells[0], cells[1]);
  }
  loaded_ = true;
  return true;
}

std::vector<std::string> DiffHierarchy(const Hierarchy& file,
                                       const Hierarchy& doc) {
  std::vector<std::string> drift;
  for (const LockEdge& e : file.edges()) {
    if (!doc.edges().count(e)) {
      drift.push_back("edge \"" + e.holder + " -> " + e.acquired +
                      "\" is in docs/lock_hierarchy.txt but missing from the "
                      "CONCURRENCY.md table");
    }
  }
  for (const LockEdge& e : doc.edges()) {
    if (!file.edges().count(e)) {
      drift.push_back("edge \"" + e.holder + " -> " + e.acquired +
                      "\" is in the CONCURRENCY.md table but missing from "
                      "docs/lock_hierarchy.txt");
    }
  }
  return drift;
}

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string Engine::RelPath(const std::string& path) const {
  if (!options_.as_path.empty()) return options_.as_path;
  const std::string& root = options_.root;
  if (!root.empty() && StartsWith(path, root.c_str())) {
    std::size_t skip = root.size();
    while (skip < path.size() && path[skip] == '/') ++skip;
    return path.substr(skip);
  }
  return path;
}

void Engine::ScanDeclarations(const std::string& path) {
  if (!scanned_files_.insert(path).second) return;
  std::string src;
  if (!ReadFile(path, &src)) return;
  Lexed lexed = Lex(src);
  const std::vector<Token>& t = lexed.tokens;
  auto& file_map = file_mutexes_[path];
  auto record = [&](const std::string& var, MutexInfo info) {
    file_map[var] = info;
    global_mutexes_[var].push_back(std::move(info));
  };
  for (std::size_t i = 0; i < t.size(); ++i) {
    // Pattern A: [ds::]Mutex var{"name"[, ... kBlockingAllowed ...]}
    if (t[i].text == "Mutex" && IsIdent(t, i + 1) && Is(t, i + 2, "{")) {
      // Guard against `class Mutex {` / `} Mutex;` style matches: the
      // brace must open an initializer that starts with a string.
      if (i + 3 < t.size() && t[i + 3].kind == Tok::kStr) {
        MutexInfo info;
        info.doctrine_name = t[i + 3].text;
        for (std::size_t j = i + 4; j < t.size() && t[j].text != "}"; ++j) {
          if (t[j].text == "kBlockingAllowed" || t[j].text == "true")
            info.blocking_allowed = true;
        }
        record(t[i + 1].text, std::move(info));
      }
      continue;
    }
    // Pattern B: var = std::make_shared<[ds::]Mutex>("name"[, ...]).
    if (t[i].text == "make_shared" && Is(t, i + 1, "<")) {
      std::size_t j = i + 2;
      if (Is(t, j, "ds") && Is(t, j + 1, "::")) j += 2;
      if (!Is(t, j, "Mutex") || !Is(t, j + 1, ">") || !Is(t, j + 2, "("))
        continue;
      if (j + 3 >= t.size() || t[j + 3].kind != Tok::kStr) continue;
      // Find the assigned variable: the identifier before the '='.
      std::size_t eq = i;
      while (eq > 0 && t[eq].text != "=" && t[eq].text != ";") --eq;
      if (eq == 0 || t[eq].text != "=" || eq < 1 ||
          t[eq - 1].kind != Tok::kIdent)
        continue;
      MutexInfo info;
      info.doctrine_name = t[j + 3].text;
      std::size_t close = MatchParen(t, j + 2);
      for (std::size_t k = j + 4; k < close; ++k) {
        if (t[k].text == "kBlockingAllowed" || t[k].text == "true")
          info.blocking_allowed = true;
      }
      record(t[eq - 1].text, std::move(info));
    }
  }
}

const Engine::MutexInfo* Engine::Resolve(const std::string& file,
                                         const std::string& var,
                                         MutexInfo* storage) const {
  // 1. This file's own declarations.
  auto fit = file_mutexes_.find(file);
  if (fit != file_mutexes_.end()) {
    auto mit = fit->second.find(var);
    if (mit != fit->second.end()) {
      *storage = mit->second;
      return storage;
    }
  }
  // 2. The same-stem sibling (foo.cpp <-> foo.hpp / foo.h).
  std::size_t dot = file.find_last_of('.');
  if (dot != std::string::npos) {
    std::string stem = file.substr(0, dot);
    for (const char* ext : {".hpp", ".h", ".cpp"}) {
      auto sit = file_mutexes_.find(stem + ext);
      if (sit == file_mutexes_.end()) continue;
      auto mit = sit->second.find(var);
      if (mit != sit->second.end()) {
        *storage = mit->second;
        return storage;
      }
    }
  }
  // 3. A globally unambiguous declaration.
  auto git = global_mutexes_.find(var);
  if (git != global_mutexes_.end() && !git->second.empty()) {
    const MutexInfo& first = git->second.front();
    bool unanimous = std::all_of(
        git->second.begin(), git->second.end(), [&](const MutexInfo& m) {
          return m.doctrine_name == first.doctrine_name &&
                 m.blocking_allowed == first.blocking_allowed;
        });
    if (unanimous) {
      *storage = first;
      return storage;
    }
  }
  return nullptr;
}

void Engine::Analyze(const std::string& path, std::vector<Finding>* findings) {
  ScanDeclarations(path);
  std::string src;
  if (!ReadFile(path, &src)) return;
  const std::string rel = RelPath(path);
  Lexed lexed = Lex(src);
  const std::vector<Token>& t = lexed.tokens;

  const bool in_clock_or_sync =
      StartsWith(rel, "src/dstampede/common/clock") ||
      StartsWith(rel, "src/dstampede/common/sync");
  const bool in_common = StartsWith(rel, "src/dstampede/common/");

  auto enabled = [&](const char* check) {
    return options_.enabled_checks.empty() ||
           options_.enabled_checks.count(check) != 0;
  };
  auto emit = [&](int line, int col, const char* check, std::string message) {
    if (!enabled(check)) return;
    auto sit = lexed.suppressions.find(line);
    if (sit != lexed.suppressions.end() &&
        (sit->second.all || sit->second.checks.count(check))) {
      if (!sit->second.justified) {
        findings->push_back(
            {rel, line, col, kNolintJustify,
             std::string("NOLINT(") + check +
                 ") needs a justification comment, e.g. \"// NOLINT(" +
                 check + "): why this is safe\""});
      }
      return;
    }
    findings->push_back({rel, line, col, check, std::move(message)});
  };

  // --- scope tracking state ----------------------------------------------
  struct LockScope {
    std::string var;        // MutexLock variable
    std::string mutex_var;  // the ds::Mutex it locks
    int depth;              // brace depth at declaration
    int line;
    bool resolved;
    MutexInfo info;
    bool active = true;  // false after var.Unlock()
  };
  struct LambdaFrame {
    int depth;  // brace depth at the lambda's '{'
    std::vector<LockScope> saved;
  };
  std::vector<LockScope> locks;
  std::vector<LambdaFrame> lambdas;
  int depth = 0;
  bool pending_lambda = false;

  auto active_locks = [&]() {
    std::vector<const LockScope*> out;
    for (const LockScope& l : locks)
      if (l.active) out.push_back(&l);
    return out;
  };

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];

    // ---- brace / lambda scope bookkeeping -------------------------------
    if (tok.text == "{") {
      ++depth;
      if (pending_lambda) {
        lambdas.push_back({depth, std::move(locks)});
        locks.clear();
        pending_lambda = false;
      }
      continue;
    }
    if (tok.text == "}") {
      if (!lambdas.empty() && lambdas.back().depth == depth) {
        locks = std::move(lambdas.back().saved);
        lambdas.pop_back();
      }
      --depth;
      while (!locks.empty() && locks.back().depth > depth) locks.pop_back();
      continue;
    }
    if (tok.text == "[") {
      // Lambda introducer vs subscript/attribute: a lambda follows a
      // statement-starter (or begins the file); subscripts follow a
      // value; [[attributes]] start with a second '['.
      bool attr = Is(t, i + 1, "[");
      bool lambda_like =
          i == 0 || kStmtStarters.count(t[i - 1].text) != 0 ||
          t[i - 1].text == "<" || t[i - 1].text == ">" ||
          t[i - 1].text == ":" || t[i - 1].text == "?";
      if (attr) {
        // Skip to the matching "]]".
        int bd = 0;
        for (; i < t.size(); ++i) {
          if (t[i].text == "[") ++bd;
          if (t[i].text == "]" && --bd == 0) break;
        }
        continue;
      }
      if (lambda_like) {
        int bd = 0;
        for (; i < t.size(); ++i) {
          if (t[i].text == "[") ++bd;
          if (t[i].text == "]" && --bd == 0) break;
        }
        pending_lambda = true;
      }
      continue;
    }

    // ---- check 1: raw clock / sleep / timed wait ------------------------
    if (!in_clock_or_sync && tok.kind == Tok::kIdent) {
      if (kRawClockClasses.count(tok.text) && Is(t, i + 1, "::") &&
          Is(t, i + 2, "now")) {
        emit(tok.line, tok.col, kRawClock,
             "std::chrono::" + tok.text +
                 "::now() bypasses the clock seam; use dstampede::Now() "
                 "(common/clock.hpp) so simulated runs stay deterministic");
      }
      if (tok.text == "this_thread" && Is(t, i + 1, "::") &&
          (Is(t, i + 2, "sleep_for") || Is(t, i + 2, "sleep_until"))) {
        emit(tok.line, tok.col, kRawClock,
             "std::this_thread::" + t[i + 2].text +
                 " bypasses the clock seam; use dstampede::SleepFor()/"
                 "SleepUntil() so a VirtualClock can drive the wait");
      }
      if ((tok.text == "wait_for" || tok.text == "wait_until") && i > 0 &&
          (t[i - 1].text == "." || t[i - 1].text == "->") &&
          Is(t, i + 1, "(")) {
        emit(tok.line, tok.col, kRawClock,
             "raw timed condition wait (" + tok.text +
                 ") bypasses the clock seam; use ds::CondVar::WaitUntil "
                 "with a Deadline");
      }
    }

    // ---- check 4: raw sync primitive outside common/ --------------------
    if (!in_common && tok.text == "std" && Is(t, i + 1, "::") &&
        IsIdent(t, i + 2) && kRawSyncTypes.count(t[i + 2].text)) {
      emit(t[i + 2].line, t[i + 2].col, kRawSync,
           "std::" + t[i + 2].text +
               " outside common/ dodges the thread-safety annotations and "
               "the deadlock detector; use ds::Mutex/ds::MutexLock/"
               "ds::CondVar (common/sync.hpp) or Thread (common/thread.hpp)");
    }

    // ---- MutexLock acquisition ------------------------------------------
    if (tok.text == "MutexLock" && IsIdent(t, i + 1) && Is(t, i + 2, "(")) {
      std::size_t close = MatchParen(t, i + 2);
      std::string mutex_var;
      for (std::size_t j = i + 3; j < close; ++j) {
        if (t[j].kind == Tok::kIdent) mutex_var = t[j].text;
      }
      LockScope scope;
      scope.var = t[i + 1].text;
      scope.mutex_var = mutex_var;
      scope.depth = depth;
      scope.line = tok.line;
      scope.resolved =
          !mutex_var.empty() && Resolve(path, mutex_var, &scope.info) &&
          !scope.info.doctrine_name.empty();

      // ---- check 5: lock-order edge vs documented hierarchy -------------
      if (scope.resolved) {
        for (const LockScope* held : active_locks()) {
          if (!held->resolved) continue;
          const std::string& a = held->info.doctrine_name;
          const std::string& b = scope.info.doctrine_name;
          if (a == b) {
            emit(tok.line, tok.col, kLockOrder,
                 "nested acquisition of lock class \"" + a +
                     "\" (outer taken at line " + std::to_string(held->line) +
                     "); same-named mutexes must never be held together "
                     "(docs/CONCURRENCY.md)");
            continue;
          }
          observed_edges_.insert({a, b});
          if (options_.hierarchy.loaded() && !options_.hierarchy.HasPath(a, b)) {
            if (options_.hierarchy.HasPath(b, a)) {
              emit(tok.line, tok.col, kLockOrder,
                   "acquiring \"" + b + "\" while holding \"" + a +
                       "\" inverts the documented lock order (docs/"
                       "lock_hierarchy.txt documents " + b + " -> " + a + ")");
            } else {
              emit(tok.line, tok.col, kLockOrder,
                   "undocumented lock-order edge \"" + a + " -> " + b +
                       "\"; add it to docs/lock_hierarchy.txt and the "
                       "CONCURRENCY.md table, or restructure to avoid the "
                       "nesting");
            }
          }
        }
      }
      locks.push_back(std::move(scope));
      i = close;  // skip the initializer
      continue;
    }

    // ---- early release: var.Unlock() ------------------------------------
    if (tok.text == "Unlock" && i >= 2 && t[i - 1].text == "." &&
        t[i - 2].kind == Tok::kIdent && Is(t, i + 1, "(")) {
      for (LockScope& l : locks) {
        if (l.active && l.var == t[i - 2].text) l.active = false;
      }
      continue;
    }

    // ---- checks 2 & 3: blocking / callback under a live lock ------------
    if (tok.kind == Tok::kIdent && Is(t, i + 1, "(") && i > 0) {
      const bool member_call = t[i - 1].text == "." || t[i - 1].text == "->";
      const bool bare_call = kStmtStarters.count(t[i - 1].text) != 0;
      const bool blocking = member_call && kBlockingMembers.count(tok.text);
      const bool callback =
          (member_call || bare_call) && kCallbackMembers.count(tok.text);
      if (blocking || callback) {
        for (const LockScope* held : active_locks()) {
          if (blocking && held->resolved && held->info.blocking_allowed)
            continue;  // the documented kBlockingAllowed exemption
          std::string lock_desc =
              held->resolved
                  ? "\"" + held->info.doctrine_name + "\""
                  : "ds::MutexLock '" + held->var + "'";
          if (blocking) {
            emit(tok.line, tok.col, kBlocking,
                 "blocking call " + tok.text + "() while holding " +
                     lock_desc + " (locked at line " +
                     std::to_string(held->line) +
                     "); release the lock first, or construct the mutex "
                     "with ds::Mutex::kBlockingAllowed if holding it across "
                     "I/O is the design (docs/CONCURRENCY.md)");
          } else {
            emit(tok.line, tok.col, kCallback,
                 tok.text + "() runs waiter continuations / completions and "
                 "must not be invoked while holding " + lock_desc +
                     " (locked at line " + std::to_string(held->line) +
                     "); collect work under the lock, run it after release "
                     "(docs/CONCURRENCY.md callback rules)");
          }
          break;  // one finding per call site is enough
        }
      }
    }
  }
}

}  // namespace dslint
