// dslint: project-specific static checks for the D-Stampede tree.
//
// Five checks enforce the doctrines that docs/CONCURRENCY.md and
// docs/SIMULATION.md previously stated only as convention:
//
//   dstampede-raw-clock            raw std::chrono clock reads, raw
//                                  sleeps, raw timed condition waits —
//                                  anything that bypasses the
//                                  common/clock seam (PR 6) and so
//                                  silently breaks sim determinism.
//   dstampede-blocking-under-lock  a known-blocking call (Call, Send,
//                                  Recv, sync Get/Put, SyncWaiter
//                                  waits) while a ds::MutexLock is
//                                  live, minus kBlockingAllowed
//                                  mutexes — the static twin of
//                                  sync::AssertBlockingAllowed.
//   dstampede-callback-under-lock  Wakeups Finish / DeferredReply
//                                  Complete invoked with a lock held,
//                                  violating the run-completions-
//                                  outside-the-lock rule.
//   dstampede-raw-sync-primitive   std::mutex / std::thread /
//                                  std::condition_variable & friends
//                                  outside common/, dodging the
//                                  annotations and the deadlock
//                                  detector.
//   dstampede-lock-order           statically observed ds::MutexLock
//                                  nesting edges that are undocumented
//                                  in docs/lock_hierarchy.txt or invert
//                                  a documented edge.
//
// Suppression: `// NOLINT(dstampede-<check>): <why>` on the offending
// line, or `// NOLINTNEXTLINE(dstampede-<check>): <why>` on the line
// above. A suppression without a justification is itself a finding
// (dstampede-nolint-justification). See docs/STATIC_ANALYSIS.md.
//
// This engine is the toolchain-independent implementation: a C++
// tokenizer plus lexical scope tracking, no libclang required, so the
// gate runs wherever the tree builds. tools/dslint/plugin/ holds the
// clang-tidy plugin flavor of the same checks for editor integration
// when clang-tidy dev headers are available.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace dslint {

struct Finding {
  std::string path;
  int line = 0;
  int col = 0;
  std::string check;    // "dstampede-raw-clock", ...
  std::string message;  // human-readable, no trailing newline

  // clang-tidy style: "path:line:col: warning: message [check]".
  std::string Render() const;
};

// One statically observed lock-nesting edge: `holder` was live when
// `acquired` was taken.
struct LockEdge {
  std::string holder;
  std::string acquired;
  bool operator<(const LockEdge& o) const {
    return holder != o.holder ? holder < o.holder : acquired < o.acquired;
  }
};

// The documented lock hierarchy (docs/lock_hierarchy.txt): directed
// edges "holder -> acquired". An observed nesting A under B is legal
// when a forward path B -> ... -> A exists.
class Hierarchy {
 public:
  // Parses "a -> b" lines ('#' comments, blank lines ignored). Returns
  // false and sets *error on I/O or syntax problems.
  bool LoadFromFile(const std::string& path, std::string* error);
  // Parses the machine-readable edge table embedded in a markdown doc
  // between the `<!-- lock-hierarchy:begin -->` / `:end` markers
  // (rows "| a | b |").
  bool LoadFromMarkdown(const std::string& path, std::string* error);

  void AddEdge(const std::string& from, const std::string& to);
  bool HasPath(const std::string& from, const std::string& to) const;
  bool loaded() const { return loaded_; }
  const std::set<LockEdge>& edges() const { return edges_; }

 private:
  std::set<LockEdge> edges_;
  std::map<std::string, std::set<std::string>> adj_;
  bool loaded_ = false;
};

struct Options {
  // Repo root; file paths are made root-relative for the path-based
  // exemptions (common/clock, common/sync, common/).
  std::string root;
  // Treat every input file as if it lived at this root-relative path
  // (fixture tests use this to exercise the path exemptions).
  std::string as_path;
  // Documented hierarchy for dstampede-lock-order; when absent the
  // lock-order check only reports same-class nesting.
  Hierarchy hierarchy;
  // Checks to run; empty means all.
  std::set<std::string> enabled_checks;
};

class Engine {
 public:
  explicit Engine(Options options) : options_(std::move(options)) {}

  // Phase 1: learn every `ds::Mutex var{"doctrine.name", ...}`
  // declaration in `path` (and remember it globally) so later analysis
  // can resolve a MutexLock's variable to its lock class and its
  // kBlockingAllowed flag. Call for every file before any Analyze.
  void ScanDeclarations(const std::string& path);

  // Phase 2: run the checks over one file; appends findings.
  void Analyze(const std::string& path, std::vector<Finding>* findings);

  // All resolved nesting edges observed across Analyze calls
  // (seeding/debugging aid for docs/lock_hierarchy.txt).
  const std::set<LockEdge>& observed_edges() const { return observed_edges_; }

 private:
  struct Impl;
  Options options_;

  struct MutexInfo {
    std::string doctrine_name;  // "" when declared without a name
    bool blocking_allowed = false;
  };
  // Mutex variable name -> declarations seen, keyed per file and
  // globally (resolution prefers the file and its same-stem sibling,
  // then a globally unambiguous match).
  std::map<std::string, std::map<std::string, MutexInfo>> file_mutexes_;
  std::map<std::string, std::vector<MutexInfo>> global_mutexes_;
  std::set<std::string> scanned_files_;
  std::set<LockEdge> observed_edges_;

  friend struct EngineTestPeer;
  std::string RelPath(const std::string& path) const;
  const MutexInfo* Resolve(const std::string& file, const std::string& var,
                           MutexInfo* storage) const;
};

// Reads a whole file; false on I/O error.
bool ReadFile(const std::string& path, std::string* out);

// Compares the hierarchy file against the edge table embedded in
// docs/CONCURRENCY.md; returns drift messages (empty == in sync).
std::vector<std::string> DiffHierarchy(const Hierarchy& file,
                                       const Hierarchy& doc);

}  // namespace dslint
