//===--- DsLintModule.cpp - D-Stampede project checks for clang-tidy -----===//
//
// The clang-tidy plugin flavor of dslint (docs/STATIC_ANALYSIS.md).
// Loaded with `clang-tidy -load libdslint.so -checks=dstampede-*`; the
// registry anchor below makes the five checks visible to the host
// binary. The standalone `dslint` binary (../engine.cpp) implements
// the same checks without a clang dependency and is what the CI gate
// runs; this module exists so clang builds get the findings inline in
// the normal tidy output, with fix-it-quality locations from the AST.
//
// Checks (names and semantics match the standalone engine 1:1):
//   dstampede-raw-clock           raw std::chrono clock reads / sleeps /
//                                 timed waits outside common/clock+sync
//   dstampede-blocking-under-lock known-blocking call while a
//                                 ds::MutexLock is live (minus
//                                 kBlockingAllowed mutexes)
//   dstampede-callback-under-lock DeferredReply/Wakeups completion run
//                                 inside a MutexLock scope
//   dstampede-raw-sync-primitive  std::mutex/condition_variable/thread
//                                 outside common/
//   dstampede-lock-order          statically nested MutexLocks whose
//                                 edge is absent from the documented
//                                 hierarchy (option: HierarchyFile)
//
//===----------------------------------------------------------------------===//

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>

#include "clang-tidy/ClangTidy.h"
#include "clang-tidy/ClangTidyCheck.h"
#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"
#include "clang/Lex/Lexer.h"

namespace clang {
namespace tidy {
namespace dstampede {

using namespace clang::ast_matchers;

namespace {

bool pathContains(StringRef Path, StringRef Needle) {
  return Path.contains(Needle);
}

// Walks up the parent chain from `S` collecting every ds::MutexLock
// variable whose declaration precedes `S` in an enclosing compound
// statement. Lambda bodies are barriers: a lock live at the point a
// lambda is *written* is not live when the lambda *runs*.
void collectLiveMutexLocks(ASTContext &Ctx, const Stmt *S,
                           llvm::SmallVectorImpl<const VarDecl *> &Locks) {
  const Stmt *Child = S;
  DynTypedNodeList Parents = Ctx.getParents(*S);
  while (!Parents.empty()) {
    const DynTypedNode &Parent = Parents[0];
    if (Parent.get<LambdaExpr>() != nullptr)
      return;  // deferred continuation: enclosing locks do not apply
    if (const auto *CS = Parent.get<CompoundStmt>()) {
      for (const Stmt *Sibling : CS->body()) {
        if (Sibling == Child)
          break;  // only declarations lexically before the call site
        const auto *DS = dyn_cast<DeclStmt>(Sibling);
        if (DS == nullptr)
          continue;
        for (const Decl *D : DS->decls()) {
          const auto *VD = dyn_cast<VarDecl>(D);
          if (VD == nullptr)
            continue;
          const CXXRecordDecl *RD =
              VD->getType().getNonReferenceType()->getAsCXXRecordDecl();
          if (RD != nullptr && RD->getName() == "MutexLock")
            Locks.push_back(VD);
        }
      }
      Child = CS;
    } else if (const Stmt *PS = Parent.get<Stmt>()) {
      Child = PS;
    } else {
      return;  // crossed out of the function body
    }
    Parents = Ctx.getParents(Parent);
  }
}

// Best-effort name of the lock class guarded by a MutexLock variable:
// resolve the constructor argument to the underlying ds::Mutex
// declaration and pull the first string literal out of its
// initializer's source text. Returns "" when unresolvable.
std::string lockClassName(ASTContext &Ctx, const VarDecl *LockVar) {
  const auto *Ctor = dyn_cast_or_null<CXXConstructExpr>(LockVar->getInit());
  if (Ctor == nullptr || Ctor->getNumArgs() == 0)
    return "";
  const Expr *Arg = Ctor->getArg(0)->IgnoreParenImpCasts();
  const ValueDecl *MutexDecl = nullptr;
  if (const auto *ME = dyn_cast<MemberExpr>(Arg))
    MutexDecl = ME->getMemberDecl();
  else if (const auto *DRE = dyn_cast<DeclRefExpr>(Arg))
    MutexDecl = DRE->getDecl();
  if (MutexDecl == nullptr)
    return "";
  SourceRange Range = MutexDecl->getSourceRange();
  if (const auto *FD = dyn_cast<FieldDecl>(MutexDecl);
      FD != nullptr && FD->hasInClassInitializer())
    Range = FD->getInClassInitializer()->getSourceRange();
  else if (const auto *VD = dyn_cast<VarDecl>(MutexDecl);
           VD != nullptr && VD->hasInit())
    Range = VD->getInit()->getSourceRange();
  const StringRef Text = Lexer::getSourceText(
      CharSourceRange::getTokenRange(Range), Ctx.getSourceManager(),
      Ctx.getLangOpts());
  const size_t Open = Text.find('"');
  if (Open == StringRef::npos)
    return "";
  const size_t Close = Text.find('"', Open + 1);
  if (Close == StringRef::npos)
    return "";
  return Text.substr(Open + 1, Close - Open - 1).str();
}

// Whether the mutex a MutexLock guards was constructed with
// ds::Mutex::kBlockingAllowed (lexical test against the declaration's
// initializer, same contract as the standalone engine).
bool isBlockingAllowed(ASTContext &Ctx, const VarDecl *LockVar) {
  const auto *Ctor = dyn_cast_or_null<CXXConstructExpr>(LockVar->getInit());
  if (Ctor == nullptr || Ctor->getNumArgs() == 0)
    return false;
  const Expr *Arg = Ctor->getArg(0)->IgnoreParenImpCasts();
  const ValueDecl *MutexDecl = nullptr;
  if (const auto *ME = dyn_cast<MemberExpr>(Arg))
    MutexDecl = ME->getMemberDecl();
  else if (const auto *DRE = dyn_cast<DeclRefExpr>(Arg))
    MutexDecl = DRE->getDecl();
  if (MutexDecl == nullptr)
    return false;
  const StringRef Text = Lexer::getSourceText(
      CharSourceRange::getTokenRange(MutexDecl->getSourceRange()),
      Ctx.getSourceManager(), Ctx.getLangOpts());
  return Text.contains("kBlockingAllowed");
}

}  // namespace

// ---------------------------------------------------------------- raw-clock

class RawClockCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *Finder) override {
    Finder->addMatcher(
        callExpr(callee(functionDecl(
                     hasName("now"),
                     hasParent(cxxRecordDecl(hasAnyName(
                         "::std::chrono::steady_clock",
                         "::std::chrono::system_clock",
                         "::std::chrono::high_resolution_clock"))))))
            .bind("call"),
        this);
    Finder->addMatcher(
        callExpr(callee(functionDecl(hasAnyName(
                     "::std::this_thread::sleep_for",
                     "::std::this_thread::sleep_until"))))
            .bind("call"),
        this);
    Finder->addMatcher(
        cxxMemberCallExpr(
            callee(cxxMethodDecl(
                hasAnyName("wait_for", "wait_until"),
                ofClass(hasAnyName("::std::condition_variable",
                                   "::std::condition_variable_any")))))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CallExpr>("call");
    const StringRef File = Result.SourceManager->getFilename(
        Result.SourceManager->getExpansionLoc(Call->getBeginLoc()));
    if (pathContains(File, "common/clock") || pathContains(File, "common/sync"))
      return;  // the seam itself
    diag(Call->getBeginLoc(),
         "raw clock/sleep bypasses the clock seam; use dstampede::Now()/"
         "SleepFor()/SleepUntil() or ds::CondVar deadline waits "
         "(common/clock.hpp) so virtual time stays deterministic");
  }
};

// ---------------------------------------------------- blocking-under-lock

class BlockingUnderLockCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *Finder) override {
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(hasAnyName(
                              "Call", "Send", "Recv", "AwaitUntil",
                              "TakeResult", "Get", "Put"))))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    llvm::SmallVector<const VarDecl *, 4> Locks;
    collectLiveMutexLocks(*Result.Context, Call, Locks);
    for (const VarDecl *Lock : Locks) {
      if (isBlockingAllowed(*Result.Context, Lock))
        continue;
      diag(Call->getBeginLoc(),
           "potentially blocking call while ds::MutexLock '%0' is live; "
           "release the lock first or declare the mutex "
           "ds::Mutex::kBlockingAllowed with a justification "
           "(docs/CONCURRENCY.md)")
          << Lock->getName();
      return;
    }
  }
};

// ---------------------------------------------------- callback-under-lock

class CallbackUnderLockCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *Finder) override {
    Finder->addMatcher(
        cxxMemberCallExpr(callee(cxxMethodDecl(
                              hasAnyName("Finish", "Complete"),
                              ofClass(hasAnyName("Wakeups", "DeferredReply")))))
            .bind("call"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Call = Result.Nodes.getNodeAs<CXXMemberCallExpr>("call");
    llvm::SmallVector<const VarDecl *, 4> Locks;
    collectLiveMutexLocks(*Result.Context, Call, Locks);
    if (Locks.empty())
      return;
    diag(Call->getBeginLoc(),
         "deferred completion runs user/wire callbacks; it must fire after "
         "ds::MutexLock '%0' is released (collect under the lock, Finish() "
         "outside — docs/CONCURRENCY.md callback rules)")
        << Locks.front()->getName();
  }
};

// ---------------------------------------------------- raw-sync-primitive

class RawSyncPrimitiveCheck : public ClangTidyCheck {
public:
  using ClangTidyCheck::ClangTidyCheck;

  void registerMatchers(MatchFinder *Finder) override {
    const auto RawType = hasUnqualifiedDesugaredType(recordType(
        hasDeclaration(cxxRecordDecl(hasAnyName(
            "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
            "::std::recursive_timed_mutex", "::std::shared_mutex",
            "::std::shared_timed_mutex", "::std::condition_variable",
            "::std::condition_variable_any", "::std::thread", "::std::jthread",
            "::std::lock_guard", "::std::unique_lock", "::std::scoped_lock",
            "::std::shared_lock")))));
    Finder->addMatcher(valueDecl(hasType(RawType)).bind("decl"), this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *D = Result.Nodes.getNodeAs<ValueDecl>("decl");
    const StringRef File = Result.SourceManager->getFilename(
        Result.SourceManager->getExpansionLoc(D->getBeginLoc()));
    if (pathContains(File, "src/dstampede/common/"))
      return;  // the wrappers themselves
    diag(D->getBeginLoc(),
         "raw standard sync/thread primitive; use ds::Mutex/ds::MutexLock/"
         "ds::CondVar (common/sync.hpp) or dstampede::Thread "
         "(common/thread.hpp) so deadlock detection, thread-safety "
         "annotations and log context keep working");
  }
};

// ------------------------------------------------------------- lock-order

class LockOrderCheck : public ClangTidyCheck {
public:
  LockOrderCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context),
        HierarchyFile(Options.get("HierarchyFile", "docs/lock_hierarchy.txt")) {
    std::ifstream In(HierarchyFile);
    std::string Line;
    while (std::getline(In, Line)) {
      const size_t Hash = Line.find('#');
      if (Hash != std::string::npos)
        Line.resize(Hash);
      const size_t Arrow = Line.find("->");
      if (Arrow == std::string::npos)
        continue;
      auto Trim = [](std::string S) {
        const size_t B = S.find_first_not_of(" \t");
        const size_t E = S.find_last_not_of(" \t");
        return B == std::string::npos ? std::string() : S.substr(B, E - B + 1);
      };
      const std::string From = Trim(Line.substr(0, Arrow));
      const std::string To = Trim(Line.substr(Arrow + 2));
      if (!From.empty() && !To.empty())
        Edges.insert(From + "\n" + To);
    }
  }

  void storeOptions(ClangTidyOptions::OptionMap &Opts) override {
    Options.store(Opts, "HierarchyFile", HierarchyFile);
  }

  void registerMatchers(MatchFinder *Finder) override {
    Finder->addMatcher(
        varDecl(hasType(cxxRecordDecl(hasName("MutexLock")))).bind("lock"),
        this);
  }

  void check(const MatchFinder::MatchResult &Result) override {
    const auto *Inner = Result.Nodes.getNodeAs<VarDecl>("lock");
    const auto *DS = dyn_cast_or_null<DeclStmt>(
        Result.Context->getParents(*Inner).empty()
            ? nullptr
            : Result.Context->getParents(*Inner)[0].get<Stmt>());
    if (DS == nullptr)
      return;
    llvm::SmallVector<const VarDecl *, 4> Outer;
    collectLiveMutexLocks(*Result.Context, DS, Outer);
    if (Outer.empty())
      return;
    const std::string InnerClass = lockClassName(*Result.Context, Inner);
    const std::string OuterClass =
        lockClassName(*Result.Context, Outer.back());
    if (InnerClass.empty() || OuterClass.empty())
      return;  // unresolvable lock class: the standalone engine matches
    if (InnerClass == OuterClass) {
      diag(Inner->getBeginLoc(),
           "nested MutexLocks of the same lock class '%0'; the runtime "
           "detector records no edge for same-class nesting, so this order "
           "is unverifiable — give the inner mutex its own name")
          << InnerClass;
      return;
    }
    if (reachable(OuterClass, InnerClass))
      return;
    if (reachable(InnerClass, OuterClass)) {
      diag(Inner->getBeginLoc(),
           "lock nesting '%0' -> '%1' inverts the documented order "
           "(docs/lock_hierarchy.txt documents the reverse path)")
          << OuterClass << InnerClass;
    } else {
      diag(Inner->getBeginLoc(),
           "undocumented lock edge '%0' -> '%1'; add it to "
           "docs/lock_hierarchy.txt and the docs/CONCURRENCY.md table, or "
           "restructure to avoid the nesting")
          << OuterClass << InnerClass;
    }
  }

private:
  bool reachable(const std::string &From, const std::string &To) const {
    std::set<std::string> Seen;
    llvm::SmallVector<std::string, 8> Stack{From};
    while (!Stack.empty()) {
      const std::string Node = Stack.pop_back_val();
      if (!Seen.insert(Node).second)
        continue;
      for (const std::string &Edge : Edges) {
        const size_t NL = Edge.find('\n');
        if (Edge.compare(0, NL, Node) != 0)
          continue;
        const std::string Next = Edge.substr(NL + 1);
        if (Next == To)
          return true;
        Stack.push_back(Next);
      }
    }
    return false;
  }

  const std::string HierarchyFile;
  std::set<std::string> Edges;  // "from\nto"
};

// ----------------------------------------------------------------- module

class DsLintModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<RawClockCheck>("dstampede-raw-clock");
    Factories.registerCheck<BlockingUnderLockCheck>(
        "dstampede-blocking-under-lock");
    Factories.registerCheck<CallbackUnderLockCheck>(
        "dstampede-callback-under-lock");
    Factories.registerCheck<RawSyncPrimitiveCheck>(
        "dstampede-raw-sync-primitive");
    Factories.registerCheck<LockOrderCheck>("dstampede-lock-order");
  }
};

}  // namespace dstampede

// Anchor: forces the module registration object to be linked into the
// plugin and keeps the registry entry alive.
static ClangTidyModuleRegistry::Add<dstampede::DsLintModule>
    X("dstampede-module", "D-Stampede concurrency/determinism checks.");

volatile int DsLintModuleAnchorSource = 0;

}  // namespace tidy
}  // namespace clang
