// mini_cluster: a three-address-space cluster with a TCP listener,
// used by the CI observability smoke test (scripts/metrics_smoke.sh).
//
// Starts the cluster, creates one channel and one queue, runs a short
// put/get/consume exchange so every layer's instruments move off zero,
// prints `DSCTL_PORT=<listener port>` on stdout, then stays up for the
// requested number of seconds (default 30) so dsctl can be run against
// it.
//
// Usage: mini_cluster [linger_seconds]
#include <cstdio>
#include <cstdlib>

#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

namespace {
int Die(const Status& status, const char* what) {
  std::fprintf(stderr, "mini_cluster: %s: %s\n", what,
               status.ToString().c_str());
  return 1;
}
}  // namespace

int main(int argc, char** argv) {
  const long linger = argc > 1 ? std::atol(argv[1]) : 30;

  core::Runtime::Options opts;
  opts.num_address_spaces = 3;
  opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(opts);
  if (!runtime.ok()) return Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) return Die(listener.status(), "listener");

  // Cross-space traffic: a channel on AS1 and a queue on AS2, driven
  // from AS0, so the smoke check sees non-trivial counters, a
  // timestamp frontier and GC reclaims on more than one space.
  core::ChannelAttr ch_attr;
  ch_attr.debug_name = "smoke-frames";
  auto ch = (*runtime)->as(1).CreateChannel(ch_attr);
  if (!ch.ok()) return Die(ch.status(), "channel");
  core::QueueAttr q_attr;
  q_attr.debug_name = "smoke-work";
  auto q = (*runtime)->as(2).CreateQueue(q_attr);
  if (!q.ok()) return Die(q.status(), "queue");

  auto out = (*runtime)->as(0).Connect(*ch, core::ConnMode::kOutput);
  auto in = (*runtime)->as(0).Connect(*ch, core::ConnMode::kInput);
  auto q_out = (*runtime)->as(0).Connect(*q, core::ConnMode::kOutput);
  auto q_in = (*runtime)->as(0).Connect(*q, core::ConnMode::kInput);
  if (!out.ok() || !in.ok() || !q_out.ok() || !q_in.ok()) {
    return Die(out.ok() ? q_out.status() : out.status(), "connect");
  }
  for (Timestamp ts = 0; ts < 8; ++ts) {
    Status s = (*runtime)->as(0).Put(*out, ts, Buffer(512));
    if (!s.ok()) return Die(s, "channel put");
    s = (*runtime)->as(0).Put(*q_out, ts, Buffer(256));
    if (!s.ok()) return Die(s, "queue put");
  }
  // Consume the first half of each so reclaim counters move while the
  // frontier and occupancy stay visible.
  for (Timestamp ts = 0; ts < 4; ++ts) {
    auto item = (*runtime)->as(0).Get(*in, core::GetSpec::Exact(ts),
                                      Deadline::AfterMillis(10000));
    if (!item.ok()) return Die(item.status(), "channel get");
    Status s = (*runtime)->as(0).Consume(*in, ts);
    if (!s.ok()) return Die(s, "channel consume");
    auto work = (*runtime)->as(0).Get(*q_in, Deadline::AfterMillis(10000));
    if (!work.ok()) return Die(work.status(), "queue get");
    s = (*runtime)->as(0).Consume(*q_in, work->timestamp);
    if (!s.ok()) return Die(s, "queue consume");
  }
  // Give the GC sweep a chance to reclaim the consumed items.
  dstampede::SleepFor(Millis(100));

  std::printf("DSCTL_PORT=%u\n", (*listener)->addr().port);
  std::fflush(stdout);

  dstampede::SleepFor(std::chrono::seconds(linger));

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
