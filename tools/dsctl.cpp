// dsctl: cluster introspection CLI (docs/OBSERVABILITY.md).
//
// Joins the cluster through a listener like any end device, discovers
// every address space via the name server's `sys/metrics/` convention,
// pulls each space's sys/metrics JSON snapshot and prints a
// cluster-wide table: per-space counters, and per-container occupancy,
// timestamp frontier and GC reclaim counts.
//
// Usage:
//   dsctl <host:port | port> [--check] [--json]
//
//   --check  exit non-zero when discovery finds no spaces or any
//            snapshot is empty/unparsable (CI smoke gate)
//   --json   dump the raw snapshots instead of the table
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "dstampede/client/client.hpp"
#include "dstampede/common/json.hpp"

using namespace dstampede;

namespace {

int Fail(const std::string& what) {
  std::fprintf(stderr, "dsctl: %s\n", what.c_str());
  return 1;
}

Result<transport::SockAddr> ParseTarget(const char* arg) {
  if (std::strchr(arg, ':') != nullptr) {
    return transport::SockAddr::FromString(arg);
  }
  const long port = std::atol(arg);
  if (port <= 0 || port > 65535) {
    return InvalidArgumentError("bad port: " + std::string(arg));
  }
  return transport::SockAddr::Loopback(static_cast<std::uint16_t>(port));
}

// Pulls a named entry out of the snapshot's registry counters /
// providers; 0 when absent (an uninstrumented or idle space).
std::int64_t RegistryValue(const json::Value& snapshot, const char* section,
                           const std::string& name) {
  const json::Value* table =
      snapshot.FindPath("registry." + std::string(section));
  if (table == nullptr) return 0;
  const json::Value* v = table->Find(name);
  return v != nullptr && v->is_number() ? v->AsInt() : 0;
}

void PrintContainers(const json::Value& snapshot, std::int64_t as_index) {
  for (const char* kind : {"channels", "queues"}) {
    const json::Value* list = snapshot.Find(kind);
    if (list == nullptr || !list->is_array()) continue;
    const bool is_queue = std::strcmp(kind, "queues") == 0;
    for (const json::Value& c : list->AsArray()) {
      const json::Value* name = c.Find("name");
      const json::Value* live =
          is_queue ? c.Find("queued_items") : c.Find("live_items");
      const json::Value* frontier = c.Find("frontier");
      const json::Value* puts = c.Find("total_puts");
      const json::Value* reclaimed = c.Find("reclaimed");
      const json::Value* parked_g = c.Find("parked_gets");
      const json::Value* parked_p = c.Find("parked_puts");
      char frontier_text[24];
      if (!is_queue && frontier != nullptr && frontier->AsInt() >= 0) {
        std::snprintf(frontier_text, sizeof(frontier_text), "%lld",
                      static_cast<long long>(frontier->AsInt()));
      } else {
        std::snprintf(frontier_text, sizeof(frontier_text), "-");
      }
      std::printf("%4lld %-8s %-24s %9lld %9s %10lld %10lld %7lld/%lld\n",
                  static_cast<long long>(as_index),
                  is_queue ? "queue" : "channel",
                  name != nullptr ? name->AsString().c_str() : "?",
                  live != nullptr ? static_cast<long long>(live->AsInt()) : 0,
                  frontier_text,
                  puts != nullptr ? static_cast<long long>(puts->AsInt()) : 0,
                  reclaimed != nullptr
                      ? static_cast<long long>(reclaimed->AsInt())
                      : 0,
                  parked_g != nullptr
                      ? static_cast<long long>(parked_g->AsInt())
                      : 0,
                  parked_p != nullptr
                      ? static_cast<long long>(parked_p->AsInt())
                      : 0);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: dsctl <host:port | port> [--check] [--json]\n");
    return 2;
  }
  bool check = false;
  bool raw_json = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    else if (std::strcmp(argv[i], "--json") == 0) raw_json = true;
    else return Fail("unknown flag: " + std::string(argv[i]));
  }

  auto target = ParseTarget(argv[1]);
  if (!target.ok()) return Fail(target.status().ToString());

  // When this process (or the cluster under test) runs inside the
  // deterministic simulation harness, surface the scenario seed so a
  // pasted dsctl dump is reproducible (docs/SIMULATION.md).
  if (const char* seed = std::getenv("DSTAMPEDE_SIM_SEED");
      seed != nullptr && *seed != '\0') {
    std::printf("sim seed: %s (DSTAMPEDE_SIM_SEED)\n", seed);
  }

  client::CClient::Options opts;
  opts.server = *target;
  opts.name = "dsctl";
  auto session = client::CClient::Join(opts);
  if (!session.ok()) return Fail("join: " + session.status().ToString());

  auto spaces = (*session)->NsList("sys/metrics/");
  if (!spaces.ok()) return Fail("discovery: " + spaces.status().ToString());
  if (spaces->empty()) {
    std::fprintf(stderr, "dsctl: no sys/metrics/ advertisements found\n");
    return check ? 1 : 0;
  }

  std::printf("%zu address space(s) advertised\n\n", spaces->size());
  bool header_printed = false;
  int bad = 0;
  std::vector<std::pair<std::int64_t, json::Value>> snapshots;
  for (const auto& entry : *spaces) {
    const auto as_id =
        static_cast<AsId>(static_cast<std::uint32_t>(entry.id_bits));
    auto text = (*session)->MetricsSnapshot(as_id);
    if (!text.ok()) {
      std::fprintf(stderr, "dsctl: %s: %s\n", entry.name.c_str(),
                   text.status().ToString().c_str());
      ++bad;
      continue;
    }
    if (raw_json) {
      std::printf("%s\n", text->c_str());
      if (!json::Parse(*text).ok()) ++bad;
      continue;
    }
    auto parsed = json::Parse(*text);
    if (!parsed.ok() || !parsed->is_object() ||
        parsed->Find("registry") == nullptr) {
      std::fprintf(stderr, "dsctl: %s: unparsable snapshot (%s)\n",
                   entry.name.c_str(),
                   parsed.ok() ? "missing registry"
                               : parsed.status().ToString().c_str());
      ++bad;
      continue;
    }
    const json::Value* as_field = parsed->Find("as");
    const std::int64_t as_index =
        as_field != nullptr ? as_field->AsInt() : entry.id_bits;
    if (!header_printed) {
      std::printf("%4s %-10s %10s %10s %10s %12s %12s\n", "as", "", "puts",
                  "gets", "reclaimed", "dispatched", "deferred");
      header_printed = true;
    }
    std::printf("%4lld %-10s %10lld %10lld %10lld %12lld %12lld\n",
                static_cast<long long>(as_index), "space",
                static_cast<long long>(
                    RegistryValue(*parsed, "counters", "stm.puts")),
                static_cast<long long>(
                    RegistryValue(*parsed, "counters", "stm.gets")),
                static_cast<long long>(
                    RegistryValue(*parsed, "counters", "stm.reclaimed_items")),
                static_cast<long long>(
                    RegistryValue(*parsed, "counters", "dispatch.requests")),
                static_cast<long long>(
                    RegistryValue(*parsed, "counters", "dispatch.deferred")));
    snapshots.emplace_back(as_index, std::move(*parsed));
  }

  if (!raw_json && !snapshots.empty()) {
    std::printf("\n%4s %-8s %-24s %9s %9s %10s %10s %12s\n", "as", "kind",
                "name", "occupancy", "frontier", "total_puts", "reclaimed",
                "parked(g/p)");
    for (const auto& [as_index, snapshot] : snapshots) {
      PrintContainers(snapshot, as_index);
    }

    // Fault-injection counters (clf.fault.* providers): all zero on a
    // healthy production cluster, so the table only appears when some
    // space actually injected faults or modeled a link.
    bool fault_header = false;
    for (const auto& [as_index, snapshot] : snapshots) {
      const std::int64_t blackholed =
          RegistryValue(snapshot, "providers", "clf.fault.blackholed");
      const std::int64_t dropped =
          RegistryValue(snapshot, "providers", "clf.fault.dropped") +
          RegistryValue(snapshot, "providers", "clf.fault.link_dropped");
      const std::int64_t delayed =
          RegistryValue(snapshot, "providers", "clf.fault.delayed");
      const std::int64_t delivered =
          RegistryValue(snapshot, "providers", "clf.fault.delivered");
      const std::int64_t pending =
          RegistryValue(snapshot, "providers", "clf.fault.delayed_pending");
      if (blackholed + dropped + delayed + delivered + pending == 0) continue;
      if (!fault_header) {
        std::printf("\n%4s %-10s %10s %10s %10s %10s %10s\n", "as", "",
                    "blackholed", "dropped", "delayed", "delivered",
                    "pending");
        fault_header = true;
      }
      std::printf("%4lld %-10s %10lld %10lld %10lld %10lld %10lld\n",
                  static_cast<long long>(as_index), "faults",
                  static_cast<long long>(blackholed),
                  static_cast<long long>(dropped),
                  static_cast<long long>(delayed),
                  static_cast<long long>(delivered),
                  static_cast<long long>(pending));
    }
  }

  // Control plane: one row per name-server replica (spaces exporting
  // ns.replog.* providers). Absent entirely on an unreplicated cluster.
  int replicas_seen = 0;
  int leaders_seen = 0;
  if (!raw_json) {
    bool ns_header = false;
    for (const auto& [as_index, snapshot] : snapshots) {
      const json::Value* providers = snapshot.FindPath("registry.providers");
      if (providers == nullptr ||
          providers->Find("ns.replog.term") == nullptr) {
        continue;
      }
      ++replicas_seen;
      const std::int64_t is_leader =
          RegistryValue(snapshot, "providers", "ns.replog.is_leader");
      if (is_leader != 0) ++leaders_seen;
      if (!ns_header) {
        std::printf("\n%4s %-10s %8s %6s %10s %12s %10s\n", "as", "",
                    "role", "term", "appends", "ldr_changes", "lag");
        ns_header = true;
      }
      std::printf("%4lld %-10s %8s %6lld %10lld %12lld %10lld\n",
                  static_cast<long long>(as_index), "ns",
                  is_leader != 0 ? "leader" : "follower",
                  static_cast<long long>(
                      RegistryValue(snapshot, "providers", "ns.replog.term")),
                  static_cast<long long>(
                      RegistryValue(snapshot, "providers", "ns.log_appends")),
                  static_cast<long long>(RegistryValue(snapshot, "providers",
                                                       "ns.leader_changes")),
                  static_cast<long long>(
                      RegistryValue(snapshot, "providers", "ns.replica_lag")));
    }
  }

  if (check && (bad > 0 || (raw_json ? false : snapshots.empty()))) {
    std::fprintf(stderr, "dsctl: --check failed (%d bad snapshot(s))\n", bad);
    return 1;
  }
  // A replicated control plane with no leader in sight cannot serve
  // fresh reads or any mutation: that's an outage, not a table quirk.
  if (check && replicas_seen > 0 && leaders_seen == 0) {
    std::fprintf(stderr,
                 "dsctl: --check failed (%d ns replica(s), no leader)\n",
                 replicas_seen);
    return 1;
  }
  return bad > 0 ? 1 : 0;
}
