// Experiment 2 (Figure 12): C client library, end device <-> cluster.
//
// The producer thread runs on an end device (client library over TCP);
// three configurations vary the consumer's location exactly as §5.1:
//   config 1  consumer co-located with the channel on the cluster
//             (one device->cluster traversal)
//   config 2  consumer on the cluster, channel in a different address
//             space (adds one intra-cluster traversal)
//   config 3  consumer on a second end device (two device->cluster
//             traversals)
// Baseline: raw TCP producer-consumer in C (half a ping-pong cycle).
//
// Paper shape: every config tracks the TCP curve; config1 overhead over
// TCP is nominal (~12%); config2 > config1; config3 largest.
//
// Output rows: bytes tcp_us cfg1_us cfg2_us cfg3_us
#include "bench_util.hpp"
#include "dstampede/client/client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

namespace {

std::unique_ptr<client::CClient> Join(const client::Listener& listener,
                                      const char* name, int preferred_as) {
  client::CClient::Options opts;
  opts.server = listener.addr();
  opts.name = name;
  opts.preferred_as = preferred_as;
  auto c = client::CClient::Join(opts);
  if (!c.ok()) bench::Die(c.status(), "join");
  return std::move(c).value();
}

}  // namespace

int main() {
  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) bench::Die(listener.status(), "listener");

  // One producer device per configuration, each with its own channel on
  // its host AS (AS0), so the three series do not interfere.
  auto producer1 = Join(**listener, "producer-cfg1", 0);
  auto producer2 = Join(**listener, "producer-cfg2", 0);
  auto producer3 = Join(**listener, "producer-cfg3", 0);
  auto ch1 = producer1->CreateChannel();
  auto ch2 = producer2->CreateChannel();
  auto ch3 = producer3->CreateChannel();
  if (!ch1.ok() || !ch2.ok() || !ch3.ok()) bench::Die(ch1.status(), "channel");

  auto out1 = producer1->Connect(*ch1, core::ConnMode::kOutput);
  auto out2 = producer2->Connect(*ch2, core::ConnMode::kOutput);
  auto out3 = producer3->Connect(*ch3, core::ConnMode::kOutput);
  if (!out1.ok() || !out2.ok() || !out3.ok()) {
    bench::Die(out1.status(), "connect");
  }

  // Config 1: consumer thread on the cluster, same AS as the channel.
  auto in1 = (*runtime)->as(0).Connect(*ch1, core::ConnMode::kInput);
  // Config 2: consumer thread on the cluster, different AS.
  auto in2 = (*runtime)->as(1).Connect(*ch2, core::ConnMode::kInput);
  // Config 3: consumer on a second end device.
  auto consumer3 = Join(**listener, "consumer-cfg3", 1);
  auto in3 = consumer3->Connect(*ch3, core::ConnMode::kInput);
  if (!in1.ok() || !in2.ok() || !in3.ok()) bench::Die(in1.status(), "connect in");

  bench::TcpPingPong tcp(60000);

  std::printf("# Experiment 2 (Figure 12): C end device <-> cluster\n");
  std::printf("%8s %12s %12s %12s %12s\n", "bytes", "tcp_us", "cfg1_us",
              "cfg2_us", "cfg3_us");

  Timestamp ts = 0;
  for (std::size_t size : bench::PayloadSweep()) {
    const double tcp_us =
        bench::MeasureMedianMicros([&] { tcp.Cycle(size); }) / 2.0;
    Buffer payload(size);
    FillPattern(payload, size);

    const double cfg1 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer1->Put(*out1, ts, payload), "put1");
      auto item = (*runtime)->as(0).Get(*in1, core::GetSpec::Exact(ts),
                                        Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get1");
      DS_BENCH_CHECK((*runtime)->as(0).Consume(*in1, ts), "consume1");
      ++ts;
    });
    const double cfg2 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer2->Put(*out2, ts, payload), "put2");
      auto item = (*runtime)->as(1).Get(*in2, core::GetSpec::Exact(ts),
                                        Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get2");
      DS_BENCH_CHECK((*runtime)->as(1).Consume(*in2, ts), "consume2");
      ++ts;
    });
    const double cfg3 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer3->Put(*out3, ts, payload), "put3");
      auto item = consumer3->Get(*in3, core::GetSpec::Exact(ts),
                                 Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get3");
      DS_BENCH_CHECK(consumer3->Consume(*in3, ts), "consume3");
      ++ts;
    });
    std::printf("%8zu %12.1f %12.1f %12.1f %12.1f\n", size, tcp_us, cfg1, cfg2,
                cfg3);
  }

  (void)producer1->Leave();
  (void)producer2->Leave();
  (void)producer3->Leave();
  (void)consumer3->Leave();
  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
