// Table 1: delivered bandwidth at the mixer's cluster node as a
// function of per-client image size and number of clients.
//
// The paper derives this table from the Figure 15 measurements: with K
// clients, per-client image size S and sustained frame rate F, the
// node must deliver K^2 * S * F bytes/sec (each of the K displays
// receives a composite of size K*S every frame). The table makes the
// scalability ceiling visible: the frame rate collapses once the
// required bandwidth hits the node's limit — an application-structure
// bottleneck, not a D-Stampede one.
//
// Output: the same matrix the paper prints, delivered MBps per
// (image size, client count), plus the measured fps in parentheses.
#include "bench_util.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

using namespace dstampede;

int main() {
  const Timestamp frames = bench::EnvLong("DS_BENCH_FRAMES", 60);
  const Timestamp warmup = frames / 6;
  const std::size_t image_kbs[] = {74, 89, 125, 145, 190};
  const std::size_t max_clients =
      static_cast<std::size_t>(bench::EnvLong("DS_BENCH_MAX_CLIENTS", 7));

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 3;
  rt_opts.dispatcher_threads = 24;
  rt_opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) bench::Die(listener.status(), "listener");

  std::printf("# Table 1: delivered bandwidth K^2*S*F (MBps) by image size "
              "and client count\n");
  std::printf("%14s", "data size (KB)");
  for (std::size_t clients = 2; clients <= max_clients; ++clients) {
    std::printf(" %14zu", clients);
  }
  std::printf("\n");

  for (std::size_t kb : image_kbs) {
    std::printf("%14zu", kb);
    for (std::size_t clients = 2; clients <= max_clients; ++clients) {
      app::VideoConfConfig config;
      config.num_clients = clients;
      config.image_bytes = kb * 1024;
      config.num_frames = frames;
      config.warmup_frames = warmup;
      config.multithreaded_mixer = true;
      config.mixer_as = 2;
      auto report = app::VideoConfApp::Run(**runtime, **listener, config);
      if (!report.ok()) bench::Die(report.status(), "conference");
      const double fps = report->min_display_fps;
      const double mbps = static_cast<double>(clients) * clients *
                          (static_cast<double>(kb) / 1024.0) * fps;
      std::printf(" %6.0f(%4.1ffps)", mbps, fps);
    }
    std::printf("\n");
  }

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
