// Micro-operation benchmarks (google-benchmark): the cost anatomy
// behind Experiments 1-3, plus the DESIGN.md ablations:
//   * XDR vs Java-style marshalling (the Exp 3 disparity, isolated)
//   * local channel put/get (space-time memory bookkeeping)
//   * queue put/get/consume
//   * CLF round trip over UDP vs the shared-memory fast path
//   * GC sweep cost against channel population
//   * compositor blend and name-server lookup
#include <benchmark/benchmark.h>

#include "dstampede/app/image.hpp"
#include "dstampede/clf/endpoint.hpp"
#include "dstampede/core/channel.hpp"
#include "dstampede/core/name_server.hpp"
#include "dstampede/core/queue.hpp"
#include "dstampede/marshal/java_style.hpp"
#include "dstampede/marshal/xdr.hpp"

using namespace dstampede;

namespace {

Buffer MakePayload(std::size_t n, std::uint64_t seed = 7) {
  Buffer b(n);
  FillPattern(b, seed);
  return b;
}

// --- marshalling ablation ----------------------------------------------------

void BM_XdrEncodeOpaque(benchmark::State& state) {
  Buffer payload = MakePayload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    marshal::XdrEncoder enc(payload.size() + 16);
    enc.PutI64(1);
    enc.PutOpaque(payload);
    benchmark::DoNotOptimize(enc.Take());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XdrEncodeOpaque)->Arg(1000)->Arg(10000)->Arg(55000);

void BM_JavaStyleEncodeOpaque(benchmark::State& state) {
  Buffer payload = MakePayload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    marshal::JavaStyleEncoder enc;
    enc.PutI64(1);
    enc.PutOpaque(payload);
    benchmark::DoNotOptimize(enc.Take());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JavaStyleEncodeOpaque)->Arg(1000)->Arg(10000)->Arg(55000);

void BM_XdrDecodeOpaque(benchmark::State& state) {
  marshal::XdrEncoder enc;
  enc.PutOpaque(MakePayload(static_cast<std::size_t>(state.range(0))));
  Buffer wire = enc.Take();
  for (auto _ : state) {
    marshal::XdrDecoder dec(wire);
    benchmark::DoNotOptimize(dec.GetOpaque());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_XdrDecodeOpaque)->Arg(1000)->Arg(55000);

void BM_JavaStyleDecodeOpaque(benchmark::State& state) {
  marshal::XdrEncoder enc;
  enc.PutOpaque(MakePayload(static_cast<std::size_t>(state.range(0))));
  Buffer wire = enc.Take();
  for (auto _ : state) {
    marshal::JavaStyleDecoder dec(wire);
    benchmark::DoNotOptimize(dec.GetOpaque());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_JavaStyleDecodeOpaque)->Arg(1000)->Arg(55000);

// --- space-time memory bookkeeping ---------------------------------------------

void BM_ChannelPutGetConsume(benchmark::State& state) {
  core::LocalChannel ch{core::ChannelAttr{}};
  std::uint32_t conn = ch.Attach(core::ConnMode::kInputOutput, "bench");
  SharedBuffer payload(MakePayload(static_cast<std::size_t>(state.range(0))));
  Timestamp ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.Put(ts, payload, Deadline::Poll()));
    benchmark::DoNotOptimize(
        ch.Get(conn, core::GetSpec::Exact(ts), Deadline::Poll()));
    benchmark::DoNotOptimize(ch.Consume(conn, ts));
    ++ts;
  }
}
BENCHMARK(BM_ChannelPutGetConsume)->Arg(1000)->Arg(55000);

void BM_ChannelGetNewestAmongMany(benchmark::State& state) {
  core::LocalChannel ch{core::ChannelAttr{}};
  std::uint32_t conn = ch.Attach(core::ConnMode::kInput, "bench");
  SharedBuffer payload(MakePayload(64));
  for (Timestamp ts = 0; ts < state.range(0); ++ts) {
    (void)ch.Put(ts, payload, Deadline::Poll());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ch.Get(conn, core::GetSpec::Newest(), Deadline::Poll()));
  }
}
BENCHMARK(BM_ChannelGetNewestAmongMany)->Arg(16)->Arg(256)->Arg(4096);

void BM_QueuePutGetConsume(benchmark::State& state) {
  core::LocalQueue q{core::QueueAttr{}};
  std::uint32_t conn = q.Attach(core::ConnMode::kInputOutput, "bench");
  SharedBuffer payload(MakePayload(static_cast<std::size_t>(state.range(0))));
  Timestamp ts = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.Put(ts, payload, Deadline::Poll()));
    benchmark::DoNotOptimize(q.Get(conn, Deadline::Poll()));
    benchmark::DoNotOptimize(q.Consume(conn, ts));
    ++ts;
  }
}
BENCHMARK(BM_QueuePutGetConsume)->Arg(1000)->Arg(55000);

// --- CLF: UDP path vs shared-memory fast path (transport ablation) ---------------

void ClfRoundTrip(benchmark::State& state, bool shm) {
  clf::Endpoint::Options opts;
  opts.enable_shm_fastpath = shm;
  auto a = clf::Endpoint::Create(opts);
  auto b = clf::Endpoint::Create(opts);
  if (!a.ok() || !b.ok()) {
    state.SkipWithError("endpoint creation failed");
    return;
  }
  Buffer payload = MakePayload(static_cast<std::size_t>(state.range(0)));
  Buffer got;
  transport::SockAddr from;
  for (auto _ : state) {
    if (!(*a)->Send((*b)->addr(), payload).ok() ||
        !(*b)->Recv(got, from, Deadline::AfterMillis(30000)).ok() ||
        !(*b)->Send(from, got).ok() ||
        !(*a)->Recv(got, from, Deadline::AfterMillis(30000)).ok()) {
      state.SkipWithError("clf exchange failed");
      return;
    }
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}

void BM_ClfRoundTripUdp(benchmark::State& state) {
  ClfRoundTrip(state, /*shm=*/false);
}
BENCHMARK(BM_ClfRoundTripUdp)->Arg(1000)->Arg(55000);

void BM_ClfRoundTripShm(benchmark::State& state) {
  ClfRoundTrip(state, /*shm=*/true);
}
BENCHMARK(BM_ClfRoundTripShm)->Arg(1000)->Arg(55000);

// --- GC sweep cost -----------------------------------------------------------------

void BM_GcSweepPopulation(benchmark::State& state) {
  // Sweep cost over a channel holding N live (non-garbage) items.
  core::LocalChannel ch{core::ChannelAttr{}};
  ch.Attach(core::ConnMode::kInput, "holder");  // never consumes
  SharedBuffer payload(MakePayload(64));
  for (Timestamp ts = 0; ts < state.range(0); ++ts) {
    (void)ch.Put(ts, payload, Deadline::Poll());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ch.Sweep(1));
  }
}
BENCHMARK(BM_GcSweepPopulation)->Arg(16)->Arg(1024)->Arg(16384);

// --- app + naming --------------------------------------------------------------------

void BM_CompositorBlend(benchmark::State& state) {
  const std::size_t kb = static_cast<std::size_t>(state.range(0));
  app::Compositor comp(4, kb * 1024);
  app::VirtualCamera camera(0, kb * 1024);
  Buffer frame = camera.Grab(0);
  Buffer composite = comp.MakeComposite();
  for (auto _ : state) {
    benchmark::DoNotOptimize(comp.Blend(composite, 2, frame));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(kb) * 1024);
}
BENCHMARK(BM_CompositorBlend)->Arg(74)->Arg(190);

void BM_NameServerLookup(benchmark::State& state) {
  core::NameServer ns;
  for (int i = 0; i < state.range(0); ++i) {
    (void)ns.Register(core::NsEntry{"svc/" + std::to_string(i),
                                    core::NsEntry::Kind::kChannel,
                                    static_cast<std::uint64_t>(i), ""});
  }
  const std::string needle = "svc/" + std::to_string(state.range(0) / 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ns.Lookup(needle));
  }
}
BENCHMARK(BM_NameServerLookup)->Arg(16)->Arg(1024);

}  // namespace

BENCHMARK_MAIN();
