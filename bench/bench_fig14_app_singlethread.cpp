// Figure 14: video conference with a single-threaded mixer, 2 clients.
//
// Two application versions are compared across per-client image sizes
// from 74 KB to 190 KB: the hand-written TCP socket version and the
// D-Stampede channel version (both single-threaded mixers, §5.2).
// Sustained frames/sec at the slowest display is reported; the paper's
// claim is that the two are comparable, i.e. D-Stampede's abstractions
// cost little at the application level.
//
// Output rows: image_kb socket_fps dstampede_fps
#include "bench_util.hpp"
#include "dstampede/app/socket_videoconf.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

using namespace dstampede;

int main() {
  // 2-client runs are cheap; a longer window steadies the socket
  // baseline, whose threads convoy on kernel buffers on small runs.
  const Timestamp frames = bench::EnvLong("DS_BENCH_FRAMES", 150);
  const Timestamp warmup = frames / 6;
  const std::size_t image_kbs[] = {74, 89, 106, 110, 125, 145, 160, 175, 190};

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 3;
  rt_opts.dispatcher_threads = 16;
  rt_opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) bench::Die(listener.status(), "listener");

  std::printf("# Figure 14: single-threaded mixer, 2 clients, "
              "%lld frames per point\n",
              static_cast<long long>(frames));
  std::printf("%9s %12s %15s\n", "image_kb", "socket_fps", "dstampede_fps");

  for (std::size_t kb : image_kbs) {
    app::SocketVideoConfConfig socket_config;
    socket_config.num_clients = 2;
    socket_config.image_bytes = kb * 1024;
    socket_config.num_frames = frames;
    socket_config.warmup_frames = warmup;
    auto socket_report = app::SocketVideoConfApp::Run(socket_config);
    if (!socket_report.ok()) bench::Die(socket_report.status(), "socket app");

    app::VideoConfConfig ds_config;
    ds_config.num_clients = 2;
    ds_config.image_bytes = kb * 1024;
    ds_config.num_frames = frames;
    ds_config.warmup_frames = warmup;
    ds_config.multithreaded_mixer = false;
    ds_config.mixer_as = 2;
    auto ds_report = app::VideoConfApp::Run(**runtime, **listener, ds_config);
    if (!ds_report.ok()) bench::Die(ds_report.status(), "dstampede app");

    std::printf("%9zu %12.1f %15.1f\n", kb, socket_report->min_display_fps,
                ds_report->min_display_fps);
  }

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
