// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. channel back-pressure depth (ChannelAttr::capacity_items) — the
//      bound that keeps producers from flooding a pipeline; too small
//      serializes the stages, unbounded hides overload;
//   B. dispatcher pool width (AddressSpace::Options::dispatcher_threads)
//      — blocking remote gets occupy a worker each, so width bounds the
//      number of simultaneously parked remote waiters;
//   C. the CLF shared-memory fast path vs the UDP path, measured at the
//      application level (the micro-level comparison lives in
//      bench_micro_ops);
//   D. failure-detection bound — how long after a network partition a
//      blocked remote call fails with kUnavailable, as a function of
//      peer_timeout (the knob trades detection latency against false
//      positives on a loaded machine).
//
// Each table reports sustained relay throughput: producer in AS0 puts
// S-byte items into a channel owned by AS1, a consumer thread gets and
// consumes them in timestamp order.
#include <thread>

#include "bench_util.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

namespace {

struct RelayResult {
  double items_per_sec = 0;
  double mbytes_per_sec = 0;
};

// Runs one producer->channel->consumer relay and reports throughput.
RelayResult RunRelay(core::Runtime& rt, std::size_t payload_bytes,
                     Timestamp items, std::size_t capacity) {
  core::ChannelAttr attr;
  attr.capacity_items = capacity;
  auto ch = rt.as(1).CreateChannel(attr);
  if (!ch.ok()) bench::Die(ch.status(), "channel");
  auto out = rt.as(0).Connect(*ch, core::ConnMode::kOutput);
  auto in = rt.as(0).Connect(*ch, core::ConnMode::kInput);
  if (!out.ok() || !in.ok()) bench::Die(out.status(), "connect");

  Buffer payload(payload_bytes);
  FillPattern(payload, 1);
  const TimePoint start = Now();
  std::thread producer([&] {
    for (Timestamp ts = 0; ts < items; ++ts) {
      DS_BENCH_CHECK(rt.as(0).Put(*out, ts, payload), "put");
    }
  });
  for (Timestamp ts = 0; ts < items; ++ts) {
    auto item = rt.as(0).Get(*in, core::GetSpec::Exact(ts),
                             Deadline::AfterMillis(60000));
    if (!item.ok()) bench::Die(item.status(), "get");
    DS_BENCH_CHECK(rt.as(0).Consume(*in, ts), "consume");
  }
  producer.join();
  const double secs =
      static_cast<double>(ToMicros(Now() - start)) / 1e6;
  RelayResult result;
  result.items_per_sec = static_cast<double>(items) / secs;
  result.mbytes_per_sec = result.items_per_sec *
                          static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
  return result;
}

std::unique_ptr<core::Runtime> MakeRuntime(std::size_t dispatchers,
                                           bool shm_fastpath) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = dispatchers;
  opts.shm_fastpath = shm_fastpath;
  opts.gc_interval = Millis(10);
  auto rt = core::Runtime::Create(opts);
  if (!rt.ok()) bench::Die(rt.status(), "runtime");
  return std::move(rt).value();
}

}  // namespace

int main() {
  const Timestamp items = bench::EnvLong("DS_BENCH_FRAMES", 60) * 3;

  std::printf("# Ablation A: channel back-pressure depth (64 KB items)\n");
  std::printf("%10s %14s %10s\n", "capacity", "items_per_sec", "MB_per_sec");
  for (std::size_t capacity : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{16}, std::size_t{64},
                               std::size_t{0} /* unbounded */}) {
    auto rt = MakeRuntime(8, /*shm_fastpath=*/false);
    RelayResult r = RunRelay(*rt, 64 * 1024, items, capacity);
    if (capacity == 0) {
      std::printf("%10s %14.0f %10.1f\n", "unbounded", r.items_per_sec,
                  r.mbytes_per_sec);
    } else {
      std::printf("%10zu %14.0f %10.1f\n", capacity, r.items_per_sec,
                  r.mbytes_per_sec);
    }
    rt->Shutdown();
  }

  // Every blocking remote get parks one dispatcher worker at the owner
  // until its item arrives. If parked waiters exhaust the pool, the
  // puts that would satisfy them cannot be processed: the pipeline
  // stalls until the get deadlines expire. Width must exceed the number
  // of concurrently parked waiters — this run demonstrates the cliff.
  std::printf("\n# Ablation B: dispatcher pool width vs 4 parked remote "
              "getters (liveness cliff)\n");
  std::printf("%10s %12s %12s\n", "width", "outcome", "elapsed_ms");
  for (std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{5},
                            std::size_t{8}, std::size_t{16}}) {
    auto rt = MakeRuntime(width, /*shm_fastpath=*/false);
    constexpr int kWaiters = 4;
    std::vector<ChannelId> channels;
    for (int p = 0; p < kWaiters; ++p) {
      auto ch = rt->as(1).CreateChannel();
      if (!ch.ok()) bench::Die(ch.status(), "channel");
      channels.push_back(*ch);
    }
    std::atomic<int> satisfied{0};
    std::vector<std::thread> waiters;
    const TimePoint start = Now();
    for (int p = 0; p < kWaiters; ++p) {
      waiters.emplace_back([&, p] {
        auto in = rt->as(0).Connect(channels[p], core::ConnMode::kInput);
        if (!in.ok()) bench::Die(in.status(), "connect");
        // Parks a worker at AS1 until the producer's put lands.
        auto item = rt->as(0).Get(*in, core::GetSpec::Exact(0),
                                  Deadline::AfterMillis(2000));
        if (item.ok()) satisfied.fetch_add(1);
      });
    }
    std::this_thread::sleep_for(Millis(200));  // let all four park
    for (int p = 0; p < kWaiters; ++p) {
      auto out = rt->as(0).Connect(channels[p], core::ConnMode::kOutput);
      if (!out.ok()) bench::Die(out.status(), "connect out");
      // With the pool exhausted this put waits behind the parked gets.
      (void)rt->as(0).Put(*out, 0, Buffer(1024), Deadline::AfterMillis(2500));
    }
    for (auto& t : waiters) t.join();
    const double ms = static_cast<double>(ToMicros(Now() - start)) / 1e3;
    std::printf("%10zu %12s %12.0f\n", width,
                satisfied.load() == kWaiters ? "flows" : "STALLS", ms);
    rt->Shutdown();
  }

  std::printf("\n# Ablation C: CLF transport path, 256 KB items "
              "(fragmented over UDP vs shared-memory fast path)\n");
  std::printf("%10s %14s %10s\n", "path", "items_per_sec", "MB_per_sec");
  for (bool shm : {false, true}) {
    auto rt = MakeRuntime(8, shm);
    RelayResult r = RunRelay(*rt, 256 * 1024, items / 2, /*capacity=*/16);
    std::printf("%10s %14.0f %10.1f\n", shm ? "shm" : "udp", r.items_per_sec,
                r.mbytes_per_sec);
    rt->Shutdown();
  }

  // A consumer blocks in a remote Get while the link to the owner is
  // cut in both directions; we time partition -> kUnavailable. The
  // detection bound should track peer_timeout, not the call deadline.
  std::printf("\n# Ablation D: failure-detection bound vs peer_timeout "
              "(partition -> kUnavailable)\n");
  std::printf("%15s %12s %14s\n", "peer_timeout_ms", "status", "detect_ms");
  for (long timeout_ms : {50L, 100L, 250L, 500L, 1000L}) {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    opts.clf_max_retransmits = 8;
    opts.peer_keepalive_interval = Millis(timeout_ms / 4 + 1);
    opts.peer_timeout = Millis(timeout_ms);
    auto rt = core::Runtime::Create(opts);
    if (!rt.ok()) bench::Die(rt.status(), "runtime");
    auto ch = (*rt)->as(1).CreateChannel();
    if (!ch.ok()) bench::Die(ch.status(), "channel");
    auto in = (*rt)->as(0).Connect(*ch, core::ConnMode::kInput);
    if (!in.ok()) bench::Die(in.status(), "connect");

    StatusCode observed = StatusCode::kOk;
    double detect_ms = 0;
    TimePoint cut{};
    std::thread blocked([&] {
      auto item = (*rt)->as(0).Get(*in, core::GetSpec::Exact(0),
                                   Deadline::AfterMillis(60000));
      detect_ms = static_cast<double>(ToMicros(Now() - cut)) / 1e3;
      observed = item.status().code();
    });
    std::this_thread::sleep_for(Millis(100));  // let the request park
    cut = Now();
    (*rt)->as(0).fault_injector().Partition((*rt)->as(1).clf_addr());
    (*rt)->as(1).fault_injector().Partition((*rt)->as(0).clf_addr());
    blocked.join();
    std::printf("%15ld %12s %14.0f\n", timeout_ms,
                observed == StatusCode::kUnavailable ? "unavailable"
                                                     : "UNEXPECTED",
                detect_ms);
    (*rt)->Shutdown();
  }
  return 0;
}
