// Ablation benches for the design choices DESIGN.md calls out:
//
//   A. channel back-pressure depth (ChannelAttr::capacity_items) — the
//      bound that keeps producers from flooding a pipeline; too small
//      serializes the stages, unbounded hides overload;
//   B. dispatcher pool width (AddressSpace::Options::dispatcher_threads)
//      vs parked remote getters — historically a blocking remote get
//      occupied a worker each, so width bounded the number of
//      simultaneously parked waiters (the liveness cliff). Blocking ops
//      now suspend into continuation waiters, so the sweep drives the
//      waiter count far past the pool width and expects every cell to
//      flow;
//   C. the CLF shared-memory fast path vs the UDP path, measured at the
//      application level (the micro-level comparison lives in
//      bench_micro_ops);
//   D. failure-detection bound — how long after a network partition a
//      blocked remote call fails with kUnavailable, as a function of
//      peer_timeout (the knob trades detection latency against false
//      positives on a loaded machine).
//
// Each table reports sustained relay throughput: producer in AS0 puts
// S-byte items into a channel owned by AS1, a consumer thread gets and
// consumes them in timestamp order.
//
// Besides the printed tables, every row is appended to
// BENCH_ablation.json so sweeps can be diffed across revisions.
#include <thread>

#include "bench_util.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

namespace {

struct RelayResult {
  double items_per_sec = 0;
  double mbytes_per_sec = 0;
};

// One machine-readable result row, mirrored into BENCH_ablation.json.
// gc_lag_p50_us and retransmits come from the runtime's metrics
// registry / CLF stats, sampled just before the runtime shuts down.
struct JsonRow {
  std::string ablation;
  std::string parameter;
  std::string outcome;
  double elapsed_ms = 0;
  double gc_lag_p50_us = 0;
  std::uint64_t retransmits = 0;
};

std::vector<JsonRow> g_rows;

void Record(std::string ablation, std::string parameter, std::string outcome,
            double elapsed_ms, double gc_lag_p50_us = 0,
            std::uint64_t retransmits = 0) {
  g_rows.push_back(JsonRow{std::move(ablation), std::move(parameter),
                           std::move(outcome), elapsed_ms, gc_lag_p50_us,
                           retransmits});
}

// Median put-to-reclaim lag of items on the container owner (AS1 in
// every sweep here).
double GcLagP50(core::Runtime& rt) {
  return static_cast<double>(rt.as(1)
                                 .metrics_registry()
                                 .GetHistogram("stm.reclaim_lag_us")
                                 .Percentile(50));
}

std::uint64_t Retransmits(core::Runtime& rt) {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < rt.size(); ++i) {
    total += rt.as(i).transport_stats().retransmissions.load(
        std::memory_order_relaxed);
  }
  return total;
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (std::size_t i = 0; i < g_rows.size(); ++i) {
    const JsonRow& row = g_rows[i];
    std::fprintf(f,
                 "  {\"ablation\": \"%s\", \"parameter\": \"%s\", "
                 "\"outcome\": \"%s\", \"elapsed_ms\": %.1f, "
                 "\"gc_lag_p50_us\": %.0f, \"retransmits\": %llu}%s\n",
                 row.ablation.c_str(), row.parameter.c_str(),
                 row.outcome.c_str(), row.elapsed_ms, row.gc_lag_p50_us,
                 static_cast<unsigned long long>(row.retransmits),
                 i + 1 < g_rows.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
}

// Runs one producer->channel->consumer relay and reports throughput.
RelayResult RunRelay(core::Runtime& rt, std::size_t payload_bytes,
                     Timestamp items, std::size_t capacity) {
  core::ChannelAttr attr;
  attr.capacity_items = capacity;
  auto ch = rt.as(1).CreateChannel(attr);
  if (!ch.ok()) bench::Die(ch.status(), "channel");
  auto out = rt.as(0).Connect(*ch, core::ConnMode::kOutput);
  auto in = rt.as(0).Connect(*ch, core::ConnMode::kInput);
  if (!out.ok() || !in.ok()) bench::Die(out.status(), "connect");

  Buffer payload(payload_bytes);
  FillPattern(payload, 1);
  const TimePoint start = Now();
  std::thread producer([&] {
    for (Timestamp ts = 0; ts < items; ++ts) {
      DS_BENCH_CHECK(rt.as(0).Put(*out, ts, payload), "put");
    }
  });
  for (Timestamp ts = 0; ts < items; ++ts) {
    auto item = rt.as(0).Get(*in, core::GetSpec::Exact(ts),
                             Deadline::AfterMillis(60000));
    if (!item.ok()) bench::Die(item.status(), "get");
    DS_BENCH_CHECK(rt.as(0).Consume(*in, ts), "consume");
  }
  producer.join();
  const double secs =
      static_cast<double>(ToMicros(Now() - start)) / 1e6;
  RelayResult result;
  result.items_per_sec = static_cast<double>(items) / secs;
  result.mbytes_per_sec = result.items_per_sec *
                          static_cast<double>(payload_bytes) / (1024.0 * 1024.0);
  return result;
}

std::unique_ptr<core::Runtime> MakeRuntime(std::size_t dispatchers,
                                           bool shm_fastpath) {
  core::Runtime::Options opts;
  opts.num_address_spaces = 2;
  opts.dispatcher_threads = dispatchers;
  opts.shm_fastpath = shm_fastpath;
  opts.gc_interval = Millis(10);
  auto rt = core::Runtime::Create(opts);
  if (!rt.ok()) bench::Die(rt.status(), "runtime");
  return std::move(rt).value();
}

}  // namespace

int main() {
  const Timestamp items = bench::EnvLong("DS_BENCH_FRAMES", 60) * 3;

  std::printf("# Ablation A: channel back-pressure depth (64 KB items)\n");
  std::printf("%10s %14s %10s\n", "capacity", "items_per_sec", "MB_per_sec");
  for (std::size_t capacity : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                               std::size_t{16}, std::size_t{64},
                               std::size_t{0} /* unbounded */}) {
    auto rt = MakeRuntime(8, /*shm_fastpath=*/false);
    const TimePoint start = Now();
    RelayResult r = RunRelay(*rt, 64 * 1024, items, capacity);
    const double ms = static_cast<double>(ToMicros(Now() - start)) / 1e3;
    const std::string label =
        capacity == 0 ? "unbounded" : ("capacity=" + std::to_string(capacity));
    if (capacity == 0) {
      std::printf("%10s %14.0f %10.1f\n", "unbounded", r.items_per_sec,
                  r.mbytes_per_sec);
    } else {
      std::printf("%10zu %14.0f %10.1f\n", capacity, r.items_per_sec,
                  r.mbytes_per_sec);
    }
    char outcome[64];
    std::snprintf(outcome, sizeof(outcome), "%.0f items/s", r.items_per_sec);
    Record("A:backpressure_depth", label, outcome, ms, GcLagP50(*rt),
           Retransmits(*rt));
    rt->Shutdown();
  }

  // Historically every blocking remote get parked one dispatcher worker
  // at the owner until its item arrived, so parked waiters past the pool
  // width deadlocked the pipeline until the get deadlines expired (the
  // liveness cliff). Blocking ops now suspend into continuation waiters
  // and free the worker, so the sweep drives the waiter count far past
  // the width — including 256 waiters against a width-2 pool — and every
  // cell must flow. While the waiters are parked a fresh Attach is timed
  // as a starvation probe: it must complete promptly even though
  // hundreds of gets are outstanding.
  std::printf("\n# Ablation B: parked remote getters vs dispatcher width "
              "(liveness cliff, now removed)\n");
  std::printf("%10s %10s %12s %12s %12s\n", "width", "waiters", "outcome",
              "elapsed_ms", "attach_ms");
  for (std::size_t width : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    for (int waiters_n : {4, 64, 256}) {
      auto rt = MakeRuntime(width, /*shm_fastpath=*/false);
      // All getters share one channel, each waiting on its own
      // timestamp, so the sweep scales without hundreds of containers.
      auto ch = rt->as(1).CreateChannel();
      if (!ch.ok()) bench::Die(ch.status(), "channel");
      std::atomic<int> satisfied{0};
      std::vector<std::thread> waiters;
      waiters.reserve(static_cast<std::size_t>(waiters_n));
      const TimePoint start = Now();
      for (int p = 0; p < waiters_n; ++p) {
        waiters.emplace_back([&, p] {
          auto in = rt->as(0).Connect(*ch, core::ConnMode::kInput);
          if (!in.ok()) bench::Die(in.status(), "connect");
          auto item = rt->as(0).Get(*in, core::GetSpec::Exact(p),
                                    Deadline::AfterMillis(30000));
          if (item.ok()) {
            DS_BENCH_CHECK(rt->as(0).Consume(*in, p), "consume");
            satisfied.fetch_add(1);
          }
        });
      }
      // Wait until every get is parked at the owner (not just sent).
      auto owned = rt->as(1).FindChannel(ch->bits());
      while (owned->parked_get_waiters() <
             static_cast<std::size_t>(waiters_n)) {
        SleepFor(Millis(5));
      }
      // Starvation probe: a control-plane op through the same pool.
      const TimePoint attach_start = Now();
      auto probe = rt->as(0).Connect(*ch, core::ConnMode::kInputOutput);
      if (!probe.ok()) bench::Die(probe.status(), "probe attach");
      const double attach_ms =
          static_cast<double>(ToMicros(Now() - attach_start)) / 1e3;
      auto out = rt->as(0).Connect(*ch, core::ConnMode::kOutput);
      if (!out.ok()) bench::Die(out.status(), "connect out");
      for (int p = 0; p < waiters_n; ++p) {
        DS_BENCH_CHECK(
            rt->as(0).Put(*out, p, Buffer(1024), Deadline::AfterMillis(30000)),
            "put");
      }
      for (auto& t : waiters) t.join();
      const double ms = static_cast<double>(ToMicros(Now() - start)) / 1e3;
      const bool flows = satisfied.load() == waiters_n;
      std::printf("%10zu %10d %12s %12.0f %12.1f\n", width, waiters_n,
                  flows ? "flows" : "STALLS", ms, attach_ms);
      char param[64];
      std::snprintf(param, sizeof(param), "width=%zu waiters=%d", width,
                    waiters_n);
      Record("B:dispatcher_width", param, flows ? "flows" : "STALLS", ms,
             GcLagP50(*rt), Retransmits(*rt));
      rt->Shutdown();
    }
  }

  std::printf("\n# Ablation C: CLF transport path, 256 KB items "
              "(fragmented over UDP vs shared-memory fast path)\n");
  std::printf("%10s %14s %10s\n", "path", "items_per_sec", "MB_per_sec");
  for (bool shm : {false, true}) {
    auto rt = MakeRuntime(8, shm);
    const TimePoint start = Now();
    RelayResult r = RunRelay(*rt, 256 * 1024, items / 2, /*capacity=*/16);
    const double ms = static_cast<double>(ToMicros(Now() - start)) / 1e3;
    std::printf("%10s %14.0f %10.1f\n", shm ? "shm" : "udp", r.items_per_sec,
                r.mbytes_per_sec);
    char outcome[64];
    std::snprintf(outcome, sizeof(outcome), "%.0f items/s", r.items_per_sec);
    Record("C:clf_path", shm ? "shm" : "udp", outcome, ms, GcLagP50(*rt),
           Retransmits(*rt));
    rt->Shutdown();
  }

  // A consumer blocks in a remote Get while the link to the owner is
  // cut in both directions; we time partition -> kUnavailable. The
  // detection bound should track peer_timeout, not the call deadline.
  std::printf("\n# Ablation D: failure-detection bound vs peer_timeout "
              "(partition -> kUnavailable)\n");
  std::printf("%15s %12s %14s\n", "peer_timeout_ms", "status", "detect_ms");
  for (long timeout_ms : {50L, 100L, 250L, 500L, 1000L}) {
    core::Runtime::Options opts;
    opts.num_address_spaces = 2;
    opts.gc_interval = Millis(10);
    opts.clf_max_retransmits = 8;
    opts.peer_keepalive_interval = Millis(timeout_ms / 4 + 1);
    opts.peer_timeout = Millis(timeout_ms);
    auto rt = core::Runtime::Create(opts);
    if (!rt.ok()) bench::Die(rt.status(), "runtime");
    auto ch = (*rt)->as(1).CreateChannel();
    if (!ch.ok()) bench::Die(ch.status(), "channel");
    auto in = (*rt)->as(0).Connect(*ch, core::ConnMode::kInput);
    if (!in.ok()) bench::Die(in.status(), "connect");

    StatusCode observed = StatusCode::kOk;
    double detect_ms = 0;
    TimePoint cut{};
    std::thread blocked([&] {
      auto item = (*rt)->as(0).Get(*in, core::GetSpec::Exact(0),
                                   Deadline::AfterMillis(60000));
      detect_ms = static_cast<double>(ToMicros(Now() - cut)) / 1e3;
      observed = item.status().code();
    });
    SleepFor(Millis(100));  // let the request park
    cut = Now();
    (*rt)->as(0).fault_injector().Partition((*rt)->as(1).clf_addr());
    (*rt)->as(1).fault_injector().Partition((*rt)->as(0).clf_addr());
    blocked.join();
    std::printf("%15ld %12s %14.0f\n", timeout_ms,
                observed == StatusCode::kUnavailable ? "unavailable"
                                                     : "UNEXPECTED",
                detect_ms);
    char param[64];
    std::snprintf(param, sizeof(param), "peer_timeout_ms=%ld", timeout_ms);
    Record("D:failure_detection", param,
           observed == StatusCode::kUnavailable ? "unavailable" : "UNEXPECTED",
           detect_ms, GcLagP50(**rt), Retransmits(**rt));
    (*rt)->Shutdown();
  }

  WriteJson("BENCH_ablation.json");
  return 0;
}
