// Experiment 3 (Figure 13): Java client library, end device <-> cluster.
//
// Identical to Experiment 2 except the end devices use the Java-style
// client personality: all argument marshalling/unmarshalling runs
// through the object-stream codec (boxed fields, byte-at-a-time double
// copies) instead of the C client's pointer manipulation. The TCP
// baseline is likewise "written in Java": each leg of the ping-pong
// passes its payload through one boxed object-stream copy, which is
// how a JVM socket program of the era moved byte arrays.
//
// Paper shape: the Java TCP baseline is close to the C TCP baseline,
// while Java D-Stampede is several times slower than C D-Stampede —
// the disparity is object construction in marshalling (§5.1 Result 2).
//
// Output rows: bytes javatcp_us cfg1_us cfg2_us cfg3_us
#include "bench_util.hpp"
#include "dstampede/client/java_client.hpp"
#include "dstampede/client/listener.hpp"
#include "dstampede/core/runtime.hpp"
#include "dstampede/marshal/java_style.hpp"

using namespace dstampede;

namespace {

std::unique_ptr<client::JavaStyleClient> Join(const client::Listener& listener,
                                              const char* name,
                                              int preferred_as) {
  client::JavaStyleClient::Options opts;
  opts.server = listener.addr();
  opts.name = name;
  opts.preferred_as = preferred_as;
  auto c = client::JavaStyleClient::Join(opts);
  if (!c.ok()) bench::Die(c.status(), "join");
  return std::move(c).value();
}

// One boxed object-stream pass over the payload: the Java socket
// program's stream handling cost, applied to each ping-pong leg.
Buffer JavaStreamPass(std::span<const std::uint8_t> payload) {
  marshal::JavaStyleEncoder enc;
  enc.PutOpaque(payload);
  Buffer staged = enc.Take();
  marshal::JavaStyleDecoder dec(staged);
  auto out = dec.GetOpaque();
  if (!out.ok()) bench::Die(out.status(), "java stream pass");
  return std::move(out).value();
}

}  // namespace

int main() {
  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) bench::Die(listener.status(), "listener");

  auto producer1 = Join(**listener, "jproducer-cfg1", 0);
  auto producer2 = Join(**listener, "jproducer-cfg2", 0);
  auto producer3 = Join(**listener, "jproducer-cfg3", 0);
  auto ch1 = producer1->CreateChannel();
  auto ch2 = producer2->CreateChannel();
  auto ch3 = producer3->CreateChannel();
  if (!ch1.ok() || !ch2.ok() || !ch3.ok()) bench::Die(ch1.status(), "channel");

  auto out1 = producer1->Connect(*ch1, core::ConnMode::kOutput);
  auto out2 = producer2->Connect(*ch2, core::ConnMode::kOutput);
  auto out3 = producer3->Connect(*ch3, core::ConnMode::kOutput);
  if (!out1.ok() || !out2.ok() || !out3.ok()) {
    bench::Die(out1.status(), "connect");
  }

  auto in1 = (*runtime)->as(0).Connect(*ch1, core::ConnMode::kInput);
  auto in2 = (*runtime)->as(1).Connect(*ch2, core::ConnMode::kInput);
  auto consumer3 = Join(**listener, "jconsumer-cfg3", 1);
  auto in3 = consumer3->Connect(*ch3, core::ConnMode::kInput);
  if (!in1.ok() || !in2.ok() || !in3.ok()) bench::Die(in1.status(), "connect in");

  bench::TcpPingPong tcp(60000);

  std::printf("# Experiment 3 (Figure 13): Java end device <-> cluster\n");
  std::printf("%8s %12s %12s %12s %12s\n", "bytes", "javatcp_us", "cfg1_us",
              "cfg2_us", "cfg3_us");

  Timestamp ts = 0;
  for (std::size_t size : bench::PayloadSweep()) {
    Buffer payload(size);
    FillPattern(payload, size);

    const double tcp_us = bench::MeasureMedianMicros([&] {
      Buffer staged = JavaStreamPass(payload);
      tcp.Cycle(size);
      Buffer received = JavaStreamPass(staged);
      (void)received;
    }) / 2.0;

    const double cfg1 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer1->Put(*out1, ts, payload), "put1");
      auto item = (*runtime)->as(0).Get(*in1, core::GetSpec::Exact(ts),
                                        Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get1");
      DS_BENCH_CHECK((*runtime)->as(0).Consume(*in1, ts), "consume1");
      ++ts;
    });
    const double cfg2 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer2->Put(*out2, ts, payload), "put2");
      auto item = (*runtime)->as(1).Get(*in2, core::GetSpec::Exact(ts),
                                        Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get2");
      DS_BENCH_CHECK((*runtime)->as(1).Consume(*in2, ts), "consume2");
      ++ts;
    });
    const double cfg3 = bench::MeasureMedianMicros([&] {
      DS_BENCH_CHECK(producer3->Put(*out3, ts, payload), "put3");
      auto item = consumer3->Get(*in3, core::GetSpec::Exact(ts),
                                 Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get3");
      DS_BENCH_CHECK(consumer3->Consume(*in3, ts), "consume3");
      ++ts;
    });
    std::printf("%8zu %12.1f %12.1f %12.1f %12.1f\n", size, tcp_us, cfg1, cfg2,
                cfg3);
  }

  (void)producer1->Leave();
  (void)producer2->Leave();
  (void)producer3->Leave();
  (void)consumer3->Leave();
  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
