// Experiment 1 (Figure 11): intra-cluster data exchange.
//
// A producer in address space AS0 puts items into a channel located in
// the consumer's address space AS1; the consumer gets them locally.
// Put and get are orchestrated not to overlap; the reported latency is
// the sum of the two, exactly as §5.1 describes. The comparison series
// are a raw UDP exchange and a raw TCP exchange (half of a
// non-overlapping ping-pong cycle).
//
// Paper shape to reproduce: D-Stampede adds a bounded overhead over raw
// UDP (<2x at large payloads) and tracks/approaches TCP.
//
// Output: one row per payload size:
//   bytes  udp_us  tcp_us  dstampede_us
#include "bench_util.hpp"
#include "dstampede/core/runtime.hpp"

using namespace dstampede;

int main() {
  // Two address spaces over CLF/UDP loopback — the fast path is off so
  // the exchange exercises the real packet layer, as the paper's
  // cross-node cluster measurement does.
  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 2;
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");

  core::AddressSpace& producer_as = (*runtime)->as(0);
  core::AddressSpace& consumer_as = (*runtime)->as(1);
  auto channel = consumer_as.CreateChannel();  // channel at the consumer
  if (!channel.ok()) bench::Die(channel.status(), "channel");
  auto out = producer_as.Connect(*channel, core::ConnMode::kOutput);
  auto in = consumer_as.Connect(*channel, core::ConnMode::kInput);
  if (!out.ok()) bench::Die(out.status(), "connect out");
  if (!in.ok()) bench::Die(in.status(), "connect in");

  bench::UdpPingPong udp(60000);
  bench::TcpPingPong tcp(60000);

  std::printf("# Experiment 1 (Figure 11): intra-cluster exchange latency\n");
  std::printf("# one network traversal; channel co-located with consumer\n");
  std::printf("%8s %12s %12s %14s\n", "bytes", "udp_us", "tcp_us",
              "dstampede_us");

  Timestamp ts = 0;
  for (std::size_t size : bench::PayloadSweep()) {
    const double udp_us =
        bench::MeasureMedianMicros([&] { udp.Cycle(size); }) / 2.0;
    const double tcp_us =
        bench::MeasureMedianMicros([&] { tcp.Cycle(size); }) / 2.0;

    Buffer payload(size);
    FillPattern(payload, size);
    const double ds_us = bench::MeasureMedianMicros([&] {
      // put (AS0 -> channel@AS1 over CLF), then non-overlapping get.
      DS_BENCH_CHECK(producer_as.Put(*out, ts, payload), "put");
      auto item = consumer_as.Get(*in, core::GetSpec::Exact(ts),
                                  Deadline::AfterMillis(30000));
      if (!item.ok()) bench::Die(item.status(), "get");
      DS_BENCH_CHECK(consumer_as.Consume(*in, ts), "consume");
      ++ts;
    });
    std::printf("%8zu %12.1f %12.1f %14.1f\n", size, udp_us, tcp_us, ds_us);
  }
  if (udp.retries() > 0) {
    std::printf("# udp baseline retried %llu drops\n",
                static_cast<unsigned long long>(udp.retries()));
  }
  (*runtime)->Shutdown();
  return 0;
}
