// Shared plumbing for the figure-reproduction benches: payload sweeps,
// ping-pong baselines, latency measurement, row printing.
//
// Environment knobs (all optional):
//   DS_BENCH_STEP   payload step for Experiments 1-3 (default 1000, the
//                   paper's step; larger = quicker runs)
//   DS_BENCH_ITERS  measured repetitions per point (default 15)
//   DS_BENCH_FRAMES frames per conference run in Fig 14/15 (default 60)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "dstampede/common/bytes.hpp"
#include "dstampede/common/clock.hpp"
#include "dstampede/common/metrics.hpp"
#include "dstampede/common/status.hpp"
#include "dstampede/transport/tcp.hpp"
#include "dstampede/transport/udp.hpp"

namespace dstampede::bench {

inline long EnvLong(const char* name, long fallback) {
  const char* value = std::getenv(name);
  return value ? std::atol(value) : fallback;
}

// The paper's Experiment 1-3 sweep: 1000..60000 bytes, step 1000.
inline std::vector<std::size_t> PayloadSweep() {
  const long step = EnvLong("DS_BENCH_STEP", 1000);
  std::vector<std::size_t> sizes;
  for (long n = 1000; n <= 60000; n += step) {
    sizes.push_back(static_cast<std::size_t>(n));
  }
  return sizes;
}

inline int Iterations() {
  return static_cast<int>(EnvLong("DS_BENCH_ITERS", 15));
}

inline void Die(const Status& status, const char* what) {
  std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

#define DS_BENCH_CHECK(expr, what)                         \
  do {                                                     \
    ::dstampede::Status ds_s_ = (expr);                    \
    if (!ds_s_.ok()) ::dstampede::bench::Die(ds_s_, what); \
  } while (false)

// Measures the median latency (microseconds) of fn() over the
// configured iterations, after `warmup` unrecorded calls. Samples land
// in the same log-scale histogram the runtime registry uses, so bench
// medians and sys/metrics quantiles share bucketing (~3% bucket error;
// well under run-to-run noise at the paper's iteration counts).
template <typename Fn>
double MeasureMedianMicros(Fn&& fn, int warmup = 3) {
  for (int i = 0; i < warmup; ++i) fn();
  metrics::Histogram hist;
  const int iters = Iterations();
  for (int i = 0; i < iters; ++i) {
    const TimePoint start = Now();
    fn();
    hist.Observe(ToMicros(Now() - start));
  }
  return static_cast<double>(hist.Percentile(50));
}

// --- raw baselines (the paper's comparison series) --------------------------
//
// Both ping-pongs run single-threaded: the exchange is deliberately
// non-overlapping (§5.1), and loopback kernel buffers hold a 60 KB leg
// comfortably, so send-then-receive from one thread is safe.

// TCP ping-pong pair on loopback. One exchange = half a cycle.
class TcpPingPong {
 public:
  explicit TcpPingPong(std::size_t max_payload) : out_(max_payload) {
    FillPattern(out_, 1);
    in_.resize(max_payload);
    auto listener = transport::TcpListener::Bind(0);
    if (!listener.ok()) Die(listener.status(), "tcp bind");
    auto client = transport::TcpConnection::Connect(listener->bound_addr());
    if (!client.ok()) Die(client.status(), "tcp connect");
    auto server = listener->Accept(Deadline::AfterMillis(5000));
    if (!server.ok()) Die(server.status(), "tcp accept");
    client_ = std::move(client).value();
    server_ = std::move(server).value();
  }

  // A -> B then B -> A with `size`-byte payloads.
  void Cycle(std::size_t size) {
    auto leg = std::span<const std::uint8_t>(out_.data(), size);
    auto sink = std::span<std::uint8_t>(in_.data(), size);
    DS_BENCH_CHECK(client_.SendAll(leg), "tcp send");
    DS_BENCH_CHECK(server_.RecvExact(sink, Deadline::AfterMillis(30000)),
                   "tcp recv");
    DS_BENCH_CHECK(server_.SendAll(leg), "tcp reply");
    DS_BENCH_CHECK(client_.RecvExact(sink, Deadline::AfterMillis(30000)),
                   "tcp reply recv");
  }

 private:
  transport::TcpConnection client_;
  transport::TcpConnection server_;
  Buffer out_;
  Buffer in_;
};

// UDP ping-pong pair on loopback (Experiment 1's second baseline).
// Retries (rare loopback drops) are counted so a perturbed run shows.
class UdpPingPong {
 public:
  explicit UdpPingPong(std::size_t max_payload) : out_(max_payload) {
    FillPattern(out_, 2);
    auto a = transport::UdpSocket::Bind(0);
    auto b = transport::UdpSocket::Bind(0);
    if (!a.ok()) Die(a.status(), "udp bind");
    if (!b.ok()) Die(b.status(), "udp bind");
    a_ = std::move(a).value();
    b_ = std::move(b).value();
  }

  void Cycle(std::size_t size) {
    auto leg = std::span<const std::uint8_t>(out_.data(), size);
    transport::SockAddr from;
    for (;;) {
      DS_BENCH_CHECK(a_.SendTo(b_.bound_addr(), leg), "udp send");
      if (b_.RecvFrom(in_, from, Deadline::AfterMillis(200)).ok()) break;
      ++retries_;
    }
    for (;;) {
      DS_BENCH_CHECK(b_.SendTo(a_.bound_addr(), leg), "udp reply");
      if (a_.RecvFrom(in_, from, Deadline::AfterMillis(200)).ok()) break;
      ++retries_;
    }
  }

  std::uint64_t retries() const { return retries_; }

 private:
  transport::UdpSocket a_;
  transport::UdpSocket b_;
  Buffer out_;
  Buffer in_;
  std::uint64_t retries_ = 0;
};

}  // namespace dstampede::bench
