// Figure 15: video conference with the multi-threaded mixer.
//
// Sustained frames/sec at the slowest display as a function of the
// number of participants (2..7), one series per client image size
// {74, 89, 125, 145, 190} KB — the paper's exact grid. Each
// participant's display receives a composite K times the client image
// size. The paper reports readings only above 10 frames/sec; rows
// below that threshold are printed but flagged, so the cutoff the
// paper applies is visible rather than silent.
//
// Output rows: image_kb clients fps [below-threshold flag]
#include "bench_util.hpp"
#include "dstampede/app/videoconf.hpp"
#include "dstampede/client/listener.hpp"

using namespace dstampede;

int main() {
  const Timestamp frames = bench::EnvLong("DS_BENCH_FRAMES", 60);
  const Timestamp warmup = frames / 6;
  const std::size_t image_kbs[] = {74, 89, 125, 145, 190};
  const std::size_t max_clients =
      static_cast<std::size_t>(bench::EnvLong("DS_BENCH_MAX_CLIENTS", 7));

  core::Runtime::Options rt_opts;
  rt_opts.num_address_spaces = 3;
  rt_opts.dispatcher_threads = 24;
  rt_opts.gc_interval = Millis(10);
  auto runtime = core::Runtime::Create(rt_opts);
  if (!runtime.ok()) bench::Die(runtime.status(), "runtime");
  auto listener = client::Listener::Start(**runtime);
  if (!listener.ok()) bench::Die(listener.status(), "listener");

  std::printf("# Figure 15: multi-threaded mixer, frames/sec vs clients\n");
  std::printf("# %lld frames per point; paper threshold: 10 fps\n",
              static_cast<long long>(frames));
  std::printf("%9s %8s %8s\n", "image_kb", "clients", "fps");

  for (std::size_t kb : image_kbs) {
    for (std::size_t clients = 2; clients <= max_clients; ++clients) {
      app::VideoConfConfig config;
      config.num_clients = clients;
      config.image_bytes = kb * 1024;
      config.num_frames = frames;
      config.warmup_frames = warmup;
      config.multithreaded_mixer = true;
      config.mixer_as = 2;
      auto report = app::VideoConfApp::Run(**runtime, **listener, config);
      if (!report.ok()) bench::Die(report.status(), "conference");
      std::printf("%9zu %8zu %8.1f%s\n", kb, clients,
                  report->min_display_fps,
                  report->min_display_fps < 10.0 ? "   (below paper threshold)"
                                                 : "");
    }
    std::printf("\n");
  }

  (*listener)->Shutdown();
  (*runtime)->Shutdown();
  return 0;
}
